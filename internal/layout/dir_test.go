package layout

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func freshDirBlock(size int) []byte {
	p := make([]byte, size)
	InitDirBlock(p)
	return p
}

func TestDirBlockInsertFind(t *testing.T) {
	p := freshDirBlock(4096)
	ok, err := DirBlockInsert(p, DirEntry{Ino: 10, Name: "hello.txt"})
	if err != nil || !ok {
		t.Fatalf("insert: ok=%v err=%v", ok, err)
	}
	ino, found, err := DirBlockFind(p, "hello.txt")
	if err != nil || !found || ino != 10 {
		t.Fatalf("find: ino=%d found=%v err=%v", ino, found, err)
	}
	if _, found, _ := DirBlockFind(p, "other"); found {
		t.Fatal("found nonexistent name")
	}
	n, err := DirBlockCount(p)
	if err != nil || n != 1 {
		t.Fatalf("count = %d, err = %v", n, err)
	}
}

func TestDirBlockRemove(t *testing.T) {
	p := freshDirBlock(4096)
	for i := 1; i <= 5; i++ {
		if ok, err := DirBlockInsert(p, DirEntry{Ino: Ino(i), Name: fmt.Sprintf("f%d", i)}); !ok || err != nil {
			t.Fatal(err)
		}
	}
	removed, err := DirBlockRemove(p, "f3")
	if err != nil || !removed {
		t.Fatalf("remove: %v %v", removed, err)
	}
	if _, found, _ := DirBlockFind(p, "f3"); found {
		t.Fatal("f3 still present after removal")
	}
	for _, name := range []string{"f1", "f2", "f4", "f5"} {
		if _, found, _ := DirBlockFind(p, name); !found {
			t.Fatalf("%s lost after removing f3", name)
		}
	}
	removed, err = DirBlockRemove(p, "f3")
	if err != nil || removed {
		t.Fatal("second removal of f3 reported success")
	}
}

func TestDirBlockDuplicateRejected(t *testing.T) {
	p := freshDirBlock(4096)
	if _, err := DirBlockInsert(p, DirEntry{Ino: 1, Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := DirBlockInsert(p, DirEntry{Ino: 2, Name: "x"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestDirBlockFull(t *testing.T) {
	p := freshDirBlock(64) // tiny block
	inserted := 0
	for i := 0; ; i++ {
		ok, err := DirBlockInsert(p, DirEntry{Ino: Ino(i + 1), Name: fmt.Sprintf("file%03d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		inserted++
	}
	if inserted == 0 {
		t.Fatal("no entries fit in a 64-byte block")
	}
	entries, err := DirBlockEntries(p)
	if err != nil || len(entries) != inserted {
		t.Fatalf("entries = %d, want %d (err %v)", len(entries), inserted, err)
	}
}

func TestValidName(t *testing.T) {
	for _, bad := range []string{"", strings.Repeat("x", MaxNameLen+1), "a/b", "nul\x00byte"} {
		if err := ValidName(bad); err == nil {
			t.Errorf("ValidName(%q) accepted", bad)
		}
	}
	for _, good := range []string{"a", strings.Repeat("x", MaxNameLen), ".hidden", "UPPER case 日本語"} {
		if err := ValidName(good); err != nil {
			t.Errorf("ValidName(%q) rejected: %v", good, err)
		}
	}
}

func TestDirBlockDecodeCorrupt(t *testing.T) {
	// Count claims entries that are not there.
	p := freshDirBlock(64)
	p[0] = 200
	if _, err := DirBlockEntries(p); err == nil {
		t.Fatal("truncated block decoded")
	}
	if _, err := DirBlockEntries(make([]byte, 1)); err == nil {
		t.Fatal("sub-header block decoded")
	}
	if _, err := DirBlockCount(make([]byte, 1)); err == nil {
		t.Fatal("sub-header count succeeded")
	}
}

func TestSortEntries(t *testing.T) {
	e := []DirEntry{{3, "c"}, {1, "a"}, {2, "b"}}
	SortEntries(e)
	if e[0].Name != "a" || e[1].Name != "b" || e[2].Name != "c" {
		t.Fatalf("sorted = %v", e)
	}
}

// Property: a random sequence of inserts and removes applied to a
// directory block matches the same sequence applied to a map.
func TestDirBlockMatchesMapProperty(t *testing.T) {
	type step struct {
		Insert bool
		NameID uint8
		Ino    uint16
	}
	f := func(steps []step) bool {
		p := freshDirBlock(2048)
		model := map[string]Ino{}
		for _, s := range steps {
			name := fmt.Sprintf("n%d", s.NameID)
			if s.Insert {
				if _, dup := model[name]; dup {
					if _, err := DirBlockInsert(p, DirEntry{Ino: Ino(s.Ino), Name: name}); err == nil {
						return false // duplicate must be rejected
					}
					continue
				}
				ok, err := DirBlockInsert(p, DirEntry{Ino: Ino(s.Ino), Name: name})
				if err != nil {
					return false
				}
				if ok {
					model[name] = Ino(s.Ino)
				}
			} else {
				removed, err := DirBlockRemove(p, name)
				if err != nil {
					return false
				}
				_, inModel := model[name]
				if removed != inModel {
					return false
				}
				delete(model, name)
			}
		}
		entries, err := DirBlockEntries(p)
		if err != nil || len(entries) != len(model) {
			return false
		}
		for _, e := range entries {
			if model[e.Name] != e.Ino {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
