// Package layout defines the on-disk data formats shared by the FFS
// baseline and the LFS storage manager: inodes, indirect blocks, and
// directory blocks, plus the block-mapping arithmetic that turns a
// logical block number into a path through the inode's block pointers.
//
// The paper stresses (Figure 2 caption) that "the formats of
// directories and inodes are the same as in the BSD example" — LFS
// changes *where* metadata lives, not what it looks like. Keeping one
// layout package for both file systems makes that property structural.
package layout

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Ino is an inode number. Inode 0 is never allocated; the root
// directory is always RootIno.
type Ino uint32

// RootIno is the inode number of the root directory.
const RootIno Ino = 1

// DiskAddr is a disk address in 512-byte sectors. NilAddr marks an
// unallocated block pointer (a hole).
type DiskAddr uint32

// NilAddr is the distinguished "no block" address.
const NilAddr DiskAddr = 0xFFFFFFFF

// IsNil reports whether the address is the distinguished nil value.
func (a DiskAddr) IsNil() bool { return a == NilAddr }

// String formats the address, rendering NilAddr as "-".
func (a DiskAddr) String() string {
	if a.IsNil() {
		return "-"
	}
	return fmt.Sprintf("%d", uint32(a))
}

// Inode geometry.
const (
	// NDirect is the number of direct block pointers in an inode.
	NDirect = 12
	// InodeSize is the on-disk inode record size in bytes.
	InodeSize = 128
	// AddrSize is the encoded size of a DiskAddr.
	AddrSize = 4
)

// FileMode holds the file type and permissions.
type FileMode uint16

// File type bits.
const (
	ModeDir  FileMode = 0x4000
	ModeFile FileMode = 0x8000
)

// IsDir reports whether the mode describes a directory.
func (m FileMode) IsDir() bool { return m&ModeDir != 0 }

// IsRegular reports whether the mode describes a regular file.
func (m FileMode) IsRegular() bool { return m&ModeFile != 0 }

// Perm returns the permission bits.
func (m FileMode) Perm() uint16 { return uint16(m) & 0o777 }

// Inode is the disk-resident per-file metadata record. The Atime field
// deliberately does not appear here: the paper keeps access time in the
// inode map (footnote 2) so that reading a file does not move its
// inode; the FFS baseline stores atime separately in its inode table
// blocks for the same reason of format parity.
type Inode struct {
	// Ino is the inode's own number, stored for consistency checks.
	Ino Ino
	// Mode holds file type and permissions; a zero Mode marks a
	// free inode slot.
	Mode FileMode
	// Nlink counts directory references.
	Nlink uint16
	// Size is the file length in bytes.
	Size uint64
	// Mtime and Ctime are simulated-clock timestamps (ns).
	Mtime int64
	Ctime int64
	// Direct holds the first NDirect block addresses.
	Direct [NDirect]DiskAddr
	// Indirect points to a block of DiskAddrs (single indirection).
	Indirect DiskAddr
	// DoubleIndirect points to a block of pointers to indirect
	// blocks.
	DoubleIndirect DiskAddr
	// Gen is the file's generation: LFS stores the inode-map
	// version here so that roll-forward recovery can rebuild the
	// map's version column from inode records alone. FFS leaves it
	// zero.
	Gen uint32
}

// NewInode returns an inode with all block pointers nil.
func NewInode(ino Ino, mode FileMode) Inode {
	in := Inode{Ino: ino, Mode: mode, Nlink: 1}
	for i := range in.Direct {
		in.Direct[i] = NilAddr
	}
	in.Indirect = NilAddr
	in.DoubleIndirect = NilAddr
	return in
}

// Allocated reports whether the inode slot is in use.
func (in *Inode) Allocated() bool { return in.Mode != 0 }

// Encode writes the inode into p, which must be at least InodeSize
// bytes. The record ends with a CRC32 of the preceding bytes.
func (in *Inode) Encode(p []byte) {
	if len(p) < InodeSize {
		panic(fmt.Sprintf("layout: inode buffer %d < %d", len(p), InodeSize))
	}
	for i := range p[:InodeSize] {
		p[i] = 0
	}
	le := binary.LittleEndian
	le.PutUint32(p[0:], uint32(in.Ino))
	le.PutUint16(p[4:], uint16(in.Mode))
	le.PutUint16(p[6:], in.Nlink)
	le.PutUint64(p[8:], in.Size)
	le.PutUint64(p[16:], uint64(in.Mtime))
	le.PutUint64(p[24:], uint64(in.Ctime))
	off := 32
	for _, a := range in.Direct {
		le.PutUint32(p[off:], uint32(a))
		off += AddrSize
	}
	le.PutUint32(p[off:], uint32(in.Indirect))
	off += AddrSize
	le.PutUint32(p[off:], uint32(in.DoubleIndirect))
	off += AddrSize
	le.PutUint32(p[off:], in.Gen)
	le.PutUint32(p[InodeSize-4:], crc32.ChecksumIEEE(p[:InodeSize-4]))
}

// DecodeInode parses an inode record from p, verifying its checksum.
func DecodeInode(p []byte) (Inode, error) {
	if len(p) < InodeSize {
		return Inode{}, fmt.Errorf("layout: inode buffer %d < %d", len(p), InodeSize)
	}
	le := binary.LittleEndian
	if got, want := crc32.ChecksumIEEE(p[:InodeSize-4]), le.Uint32(p[InodeSize-4:]); got != want {
		return Inode{}, fmt.Errorf("layout: inode checksum mismatch (got %#x, want %#x)", got, want)
	}
	var in Inode
	in.Ino = Ino(le.Uint32(p[0:]))
	in.Mode = FileMode(le.Uint16(p[4:]))
	in.Nlink = le.Uint16(p[6:])
	in.Size = le.Uint64(p[8:])
	in.Mtime = int64(le.Uint64(p[16:]))
	in.Ctime = int64(le.Uint64(p[24:]))
	off := 32
	for i := range in.Direct {
		in.Direct[i] = DiskAddr(le.Uint32(p[off:]))
		off += AddrSize
	}
	in.Indirect = DiskAddr(le.Uint32(p[off:]))
	off += AddrSize
	in.DoubleIndirect = DiskAddr(le.Uint32(p[off:]))
	off += AddrSize
	in.Gen = le.Uint32(p[off:])
	return in, nil
}

// EncodeAddrBlock writes an indirect block (a vector of DiskAddrs)
// into p.
func EncodeAddrBlock(addrs []DiskAddr, p []byte) {
	if len(p) < len(addrs)*AddrSize {
		panic("layout: addr block buffer too small")
	}
	for i, a := range addrs {
		binary.LittleEndian.PutUint32(p[i*AddrSize:], uint32(a))
	}
}

// DecodeAddrBlock parses an indirect block of n addresses from p.
func DecodeAddrBlock(p []byte, n int) []DiskAddr {
	if len(p) < n*AddrSize {
		panic("layout: addr block buffer too small")
	}
	addrs := make([]DiskAddr, n)
	for i := range addrs {
		addrs[i] = DiskAddr(binary.LittleEndian.Uint32(p[i*AddrSize:]))
	}
	return addrs
}

// Checksum returns the CRC32 (IEEE) of p; every multi-sector on-disk
// structure in this repository is checksummed with it — except log-unit
// payloads, which need DataChecksum (below).
func Checksum(p []byte) uint32 { return crc32.ChecksumIEEE(p) }

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// DataChecksum checksums a log unit's payload blocks. It deliberately
// uses a different polynomial (Castagnoli) from Checksum: inode blocks
// embed a per-record IEEE CRC, and a CRC is affine, so an IEEE checksum
// over records that end in their own IEEE CRC collapses to a value that
// depends only on which slots are occupied, never on their contents
// (the residue property: crc(m ‖ crc(m)) is constant in m). An IEEE
// DataCRC therefore cannot tell a torn segment write — fresh summary,
// stale inode block underneath — from an intact one. Under Castagnoli
// the embedded IEEE CRCs are ordinary content bytes and the collapse
// disappears.
func DataChecksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }
