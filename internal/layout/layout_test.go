package layout

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestInodeEncodeDecodeRoundTrip(t *testing.T) {
	in := NewInode(42, ModeFile|0o644)
	in.Nlink = 3
	in.Size = 123456789
	in.Mtime = 111
	in.Ctime = 222
	in.Direct[0] = 1000
	in.Direct[11] = 9999
	in.Indirect = 5000
	in.DoubleIndirect = 6000

	buf := make([]byte, InodeSize)
	in.Encode(buf)
	got, err := DecodeInode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, in)
	}
}

func TestInodeDecodeDetectsCorruption(t *testing.T) {
	in := NewInode(7, ModeDir|0o755)
	buf := make([]byte, InodeSize)
	in.Encode(buf)
	buf[10] ^= 0xFF
	if _, err := DecodeInode(buf); err == nil {
		t.Fatal("corrupted inode decoded without error")
	}
}

func TestInodeDecodeShortBuffer(t *testing.T) {
	if _, err := DecodeInode(make([]byte, 10)); err == nil {
		t.Fatal("short buffer decoded")
	}
}

func TestInodeEncodeShortBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short Encode buffer did not panic")
		}
	}()
	in := NewInode(1, ModeFile)
	in.Encode(make([]byte, 10))
}

func TestNewInodeHasNilPointers(t *testing.T) {
	in := NewInode(5, ModeFile)
	for i, a := range in.Direct {
		if !a.IsNil() {
			t.Fatalf("Direct[%d] = %v, want nil", i, a)
		}
	}
	if !in.Indirect.IsNil() || !in.DoubleIndirect.IsNil() {
		t.Fatal("indirect pointers not nil")
	}
	if !in.Allocated() {
		t.Fatal("fresh inode not allocated")
	}
	if (&Inode{}).Allocated() {
		t.Fatal("zero inode reported allocated")
	}
}

func TestFileMode(t *testing.T) {
	d := ModeDir | 0o755
	f := ModeFile | 0o644
	if !d.IsDir() || d.IsRegular() {
		t.Fatal("dir mode misclassified")
	}
	if !f.IsRegular() || f.IsDir() {
		t.Fatal("file mode misclassified")
	}
	if d.Perm() != 0o755 || f.Perm() != 0o644 {
		t.Fatal("Perm wrong")
	}
}

func TestDiskAddrString(t *testing.T) {
	if NilAddr.String() != "-" {
		t.Fatalf("NilAddr.String() = %q", NilAddr.String())
	}
	if DiskAddr(17).String() != "17" {
		t.Fatalf("DiskAddr(17).String() = %q", DiskAddr(17).String())
	}
}

func TestAddrBlockRoundTrip(t *testing.T) {
	addrs := []DiskAddr{1, NilAddr, 3, 0, 12345678}
	buf := make([]byte, len(addrs)*AddrSize)
	EncodeAddrBlock(addrs, buf)
	got := DecodeAddrBlock(buf, len(addrs))
	if !reflect.DeepEqual(got, addrs) {
		t.Fatalf("addr block round trip mismatch: %v vs %v", got, addrs)
	}
}

// Property: inode encode/decode is the identity for arbitrary field
// values.
func TestInodeRoundTripProperty(t *testing.T) {
	f := func(ino uint32, mode, nlink uint16, size uint64, mtime, ctime int64, seed int64) bool {
		in := Inode{
			Ino: Ino(ino), Mode: FileMode(mode), Nlink: nlink,
			Size: size, Mtime: mtime, Ctime: ctime,
		}
		rng := rand.New(rand.NewSource(seed))
		for i := range in.Direct {
			in.Direct[i] = DiskAddr(rng.Uint32())
		}
		in.Indirect = DiskAddr(rng.Uint32())
		in.DoubleIndirect = DiskAddr(rng.Uint32())
		buf := make([]byte, InodeSize)
		in.Encode(buf)
		got, err := DecodeInode(buf)
		return err == nil && reflect.DeepEqual(got, in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapBlockDirect(t *testing.T) {
	for lbn := int64(0); lbn < NDirect; lbn++ {
		p, err := MapBlock(lbn, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if p.Level != 0 || p.Direct != int(lbn) {
			t.Fatalf("MapBlock(%d) = %+v", lbn, p)
		}
	}
}

func TestMapBlockSingleIndirect(t *testing.T) {
	apb := AddrsPerBlock(4096)
	p, err := MapBlock(NDirect, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if p.Level != 1 || p.Inner != 0 {
		t.Fatalf("first indirect block = %+v", p)
	}
	p, err = MapBlock(NDirect+int64(apb)-1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if p.Level != 1 || p.Inner != apb-1 {
		t.Fatalf("last single-indirect block = %+v", p)
	}
}

func TestMapBlockDoubleIndirect(t *testing.T) {
	apb := int64(AddrsPerBlock(4096))
	first := int64(NDirect) + apb
	p, err := MapBlock(first, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if p.Level != 2 || p.Outer != 0 || p.Inner != 0 {
		t.Fatalf("first double-indirect block = %+v", p)
	}
	p, err = MapBlock(first+apb+3, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if p.Level != 2 || p.Outer != 1 || p.Inner != 3 {
		t.Fatalf("double-indirect (1,3) = %+v", p)
	}
}

func TestMapBlockLimits(t *testing.T) {
	if _, err := MapBlock(-1, 4096); err == nil {
		t.Fatal("negative lbn accepted")
	}
	max := MaxFileBlocks(4096)
	if _, err := MapBlock(max-1, 4096); err != nil {
		t.Fatalf("last addressable block rejected: %v", err)
	}
	if _, err := MapBlock(max, 4096); err == nil {
		t.Fatal("block beyond double-indirect reach accepted")
	}
}

func TestBlocksForSize(t *testing.T) {
	cases := []struct {
		size uint64
		want int64
	}{{0, 0}, {1, 1}, {4096, 1}, {4097, 2}, {8192, 2}}
	for _, c := range cases {
		if got := BlocksForSize(c.size, 4096); got != c.want {
			t.Errorf("BlocksForSize(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

// Property: MapBlock is injective — distinct lbns map to distinct
// paths (within the addressable range).
func TestMapBlockInjectiveProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		la, lb := int64(a), int64(b)
		pa, errA := MapBlock(la, 512)
		pb, errB := MapBlock(lb, 512)
		if errA != nil || errB != nil {
			return true // out of range for tiny blocks; not this property's concern
		}
		if la == lb {
			return pa == pb
		}
		return pa != pb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
