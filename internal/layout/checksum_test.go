package layout

// The regression behind DataChecksum's existence: a CRC is affine, so
// crc(m ‖ crc(m)) is a constant independent of m (the residue
// property). Inode records end in their own IEEE CRC32, so an IEEE
// checksum over a block of such records depends only on which slots
// are occupied — never on what the records say. A log-unit DataCRC
// computed with the same polynomial therefore cannot distinguish a
// torn segment write (fresh summary over a stale inode block) from an
// intact one. DataChecksum uses a different polynomial (Castagnoli)
// so the embedded CRCs are ordinary content bytes.

import "testing"

// inodeBlock returns a 4 KB block holding one self-checksummed inode
// record with the given distinguishing content and zeros elsewhere.
func inodeBlock(gen uint32, size uint64, first DiskAddr) []byte {
	in := NewInode(7, ModeFile|0o644)
	in.Gen = gen
	in.Size = size
	in.Direct[0] = first
	blk := make([]byte, 4096)
	in.Encode(blk[:InodeSize])
	return blk
}

func TestDataChecksumBreaksInodeResidue(t *testing.T) {
	a := inodeBlock(1, 100, 1000)
	b := inodeBlock(2, 200, 2000)

	// Demonstrate the trap first: the whole-block IEEE checksums of
	// two different valid records collide. If this ever stops
	// holding, the residue rationale (and this test) need revisiting
	// — it would mean the record format no longer ends in a plain
	// IEEE CRC.
	if Checksum(a) == Checksum(b) {
		if DataChecksum(a) == DataChecksum(b) {
			t.Fatal("DataChecksum collides on blocks with different inode records; " +
				"a torn inode-block write would verify as intact")
		}
	} else {
		t.Fatal("IEEE checksums of self-CRC'd records no longer collide; " +
			"inode records seem to no longer end in an IEEE CRC — update the DataChecksum rationale")
	}

	// The embedded per-record CRC must still round-trip.
	if _, err := DecodeInode(a[:InodeSize]); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
}
