package layout

import "testing"

// Decoders for inode records and directory blocks parse raw image
// bytes; they must never panic regardless of input.

func FuzzDecodeInode(f *testing.F) {
	in := NewInode(9, ModeFile|0o644)
	in.Size = 12345
	buf := make([]byte, InodeSize)
	in.Encode(buf)
	f.Add(buf)
	f.Add(make([]byte, InodeSize))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeInode(data)
		if err == nil && rec.Ino != 9 && len(data) >= InodeSize {
			// Any checksum-valid record is acceptable; just ensure
			// the struct is usable.
			_ = rec.Allocated()
		}
	})
}

func FuzzDirBlock(f *testing.F) {
	blk := make([]byte, 512)
	InitDirBlock(blk)
	if _, err := DirBlockInsert(blk, DirEntry{Ino: 4, Name: "seed"}); err != nil {
		f.Fatal(err)
	}
	f.Add(blk)
	f.Add(make([]byte, 512))
	f.Add([]byte{0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DirBlockEntries(data)
		if err != nil {
			return
		}
		// Decoded entries must round-trip through the accessors
		// without panicking.
		for _, e := range entries {
			if _, _, err := DirBlockFind(data, e.Name); err != nil {
				t.Fatalf("Find failed on decodable block: %v", err)
			}
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		_, _ = DirBlockRemove(cp, "whatever")
	})
}
