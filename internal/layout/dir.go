package layout

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Directory blocks hold a packed sequence of variable-length entries:
// a uint16 record count followed by records of the form
//
//	ino (4 bytes) | name length (2 bytes) | name bytes
//
// Entries never straddle blocks. Insertion and removal rewrite the
// block compactly; directory blocks are small enough (4–8 KB) that the
// rewrite cost is charged through the CPU model, not worth an in-place
// scheme.

// MaxNameLen is the longest permitted file name, matching BSD.
const MaxNameLen = 255

// DirEntry is one name-to-inode binding.
type DirEntry struct {
	Ino  Ino
	Name string
}

// DirEntrySize returns the encoded size of an entry with the given
// name.
func DirEntrySize(name string) int { return 4 + 2 + len(name) }

// dirHeaderSize is the per-block overhead (the record count).
const dirHeaderSize = 2

// ValidName reports an error for names that cannot be stored: empty,
// too long, or containing a path separator or NUL.
func ValidName(name string) error {
	if name == "" {
		return fmt.Errorf("layout: empty file name")
	}
	if len(name) > MaxNameLen {
		return fmt.Errorf("layout: file name longer than %d bytes", MaxNameLen)
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '/' || name[i] == 0 {
			return fmt.Errorf("layout: file name %q contains %q", name, name[i])
		}
	}
	return nil
}

// InitDirBlock formats p as an empty directory block.
func InitDirBlock(p []byte) {
	for i := range p {
		p[i] = 0
	}
}

// DirBlockEntries decodes all entries in the block.
func DirBlockEntries(p []byte) ([]DirEntry, error) {
	if len(p) < dirHeaderSize {
		return nil, fmt.Errorf("layout: directory block shorter than header")
	}
	count := int(binary.LittleEndian.Uint16(p))
	entries := make([]DirEntry, 0, count)
	off := dirHeaderSize
	for i := 0; i < count; i++ {
		if off+6 > len(p) {
			return nil, fmt.Errorf("layout: directory block truncated at entry %d", i)
		}
		ino := Ino(binary.LittleEndian.Uint32(p[off:]))
		nlen := int(binary.LittleEndian.Uint16(p[off+4:]))
		off += 6
		if nlen == 0 || nlen > MaxNameLen || off+nlen > len(p) {
			return nil, fmt.Errorf("layout: directory entry %d has bad name length %d", i, nlen)
		}
		entries = append(entries, DirEntry{Ino: ino, Name: string(p[off : off+nlen])})
		off += nlen
	}
	return entries, nil
}

// encodeDirBlock writes entries into p; the caller guarantees they fit.
func encodeDirBlock(entries []DirEntry, p []byte) {
	InitDirBlock(p)
	binary.LittleEndian.PutUint16(p, uint16(len(entries)))
	off := dirHeaderSize
	for _, e := range entries {
		binary.LittleEndian.PutUint32(p[off:], uint32(e.Ino))
		binary.LittleEndian.PutUint16(p[off+4:], uint16(len(e.Name)))
		off += 6
		copy(p[off:], e.Name)
		off += len(e.Name)
	}
}

// dirBlockUsed returns the bytes consumed by the given entries.
func dirBlockUsed(entries []DirEntry) int {
	used := dirHeaderSize
	for _, e := range entries {
		used += DirEntrySize(e.Name)
	}
	return used
}

// DirBlockInsert adds an entry to the block, returning false when the
// block has no room. It rejects invalid names and duplicate names
// within the block.
func DirBlockInsert(p []byte, e DirEntry) (bool, error) {
	if err := ValidName(e.Name); err != nil {
		return false, err
	}
	entries, err := DirBlockEntries(p)
	if err != nil {
		return false, err
	}
	for _, x := range entries {
		if x.Name == e.Name {
			return false, fmt.Errorf("layout: duplicate directory entry %q", e.Name)
		}
	}
	if dirBlockUsed(entries)+DirEntrySize(e.Name) > len(p) {
		return false, nil
	}
	entries = append(entries, e)
	encodeDirBlock(entries, p)
	return true, nil
}

// DirBlockRemove deletes the named entry, reporting whether it was
// present.
func DirBlockRemove(p []byte, name string) (bool, error) {
	entries, err := DirBlockEntries(p)
	if err != nil {
		return false, err
	}
	for i, e := range entries {
		if e.Name == name {
			entries = append(entries[:i], entries[i+1:]...)
			encodeDirBlock(entries, p)
			return true, nil
		}
	}
	return false, nil
}

// DirBlockFind looks the name up in the block.
func DirBlockFind(p []byte, name string) (Ino, bool, error) {
	entries, err := DirBlockEntries(p)
	if err != nil {
		return 0, false, err
	}
	for _, e := range entries {
		if e.Name == name {
			return e.Ino, true, nil
		}
	}
	return 0, false, nil
}

// DirBlockCount returns the number of entries in the block.
func DirBlockCount(p []byte) (int, error) {
	if len(p) < dirHeaderSize {
		return 0, fmt.Errorf("layout: directory block shorter than header")
	}
	return int(binary.LittleEndian.Uint16(p)), nil
}

// SortEntries orders entries by name, for deterministic ReadDir
// output.
func SortEntries(entries []DirEntry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
}
