package trace

import (
	"strings"
	"testing"

	"lfs/internal/disk"
)

func TestRecorderAndSummarize(t *testing.T) {
	var r Recorder
	r.Record(disk.Event{Kind: disk.OpWrite, Sector: 0, Sectors: 8, Sync: true, Sequential: false, Label: "inode"})
	r.Record(disk.Event{Kind: disk.OpWrite, Sector: 8, Sectors: 8, Sync: false, Sequential: true, Label: "data"})
	r.Record(disk.Event{Kind: disk.OpRead, Sector: 0, Sectors: 8, Sync: true, Sequential: false, Label: "read"})
	s := Summarize(r.Events())
	if s.Writes != 2 || s.SyncWrites != 1 || s.SeqWrites != 1 || s.Reads != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.BytesWritten != 2*8*512 || s.BytesRead != 8*512 {
		t.Fatalf("bytes = %+v", s)
	}
	if s.Seeks != 2 {
		t.Fatalf("seeks = %d", s.Seeks)
	}
	if !strings.Contains(s.String(), "writes=2") {
		t.Fatalf("String = %q", s.String())
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Fatal("Reset left events")
	}
}

func TestFormatTable(t *testing.T) {
	var r Recorder
	r.Record(disk.Event{Kind: disk.OpWrite, Sector: 100, Sectors: 8, Sync: true, Label: "dir data"})
	out := FormatTable(r.Events())
	if !strings.Contains(out, "dir data") || !strings.Contains(out, "write") {
		t.Fatalf("table missing fields:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("table has %d lines, want header + 1 row", len(lines))
	}
}

func TestEmptySummary(t *testing.T) {
	s := Summarize(nil)
	if s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
}
