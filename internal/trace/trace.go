// Package trace records and formats disk access traces. Figures 1
// and 2 of the paper are qualitative pictures of the disk accesses
// caused by creating two small files under BSD FFS (many small random
// synchronous writes) and under LFS (one large sequential
// asynchronous write); this package renders those pictures as tables
// from real traces of the two implementations.
package trace

import (
	"fmt"
	"strings"

	"lfs/internal/disk"
)

// Recorder collects disk events; it implements disk.Tracer.
type Recorder struct {
	events []disk.Event
}

// Record appends an event.
func (r *Recorder) Record(ev disk.Event) { r.events = append(r.events, ev) }

// Events returns the recorded events.
func (r *Recorder) Events() []disk.Event { return r.events }

// Reset discards recorded events.
func (r *Recorder) Reset() { r.events = nil }

// Summary aggregates a trace into the numbers the paper quotes for
// Figure 1 ("8 random writes of which half are synchronous").
type Summary struct {
	Reads        int
	Writes       int
	SyncWrites   int
	SeqWrites    int // writes that continued the previous transfer
	BytesRead    int64
	BytesWritten int64
	Seeks        int
}

// Summarize aggregates the events.
func Summarize(events []disk.Event) Summary {
	var s Summary
	for _, ev := range events {
		n := int64(ev.Sectors) * disk.SectorSize
		if ev.Kind == disk.OpRead {
			s.Reads++
			s.BytesRead += n
			continue
		}
		s.Writes++
		s.BytesWritten += n
		if ev.Sync {
			s.SyncWrites++
		}
		if ev.Sequential {
			s.SeqWrites++
		}
	}
	for _, ev := range events {
		if !ev.Sequential {
			s.Seeks++
		}
	}
	return s
}

// String formats the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("writes=%d (sync=%d, sequential=%d) reads=%d seeks=%d written=%dB",
		s.Writes, s.SyncWrites, s.SeqWrites, s.Reads, s.Seeks, s.BytesWritten)
}

// FormatTable renders the trace as an aligned table, one row per disk
// request.
func FormatTable(events []disk.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-5s %10s %8s %5s %5s %s\n",
		"time", "op", "sector", "bytes", "sync", "seek", "label")
	for _, ev := range events {
		sync, seek := "-", "-"
		if ev.Sync {
			sync = "yes"
		}
		if !ev.Sequential {
			seek = "yes"
		}
		fmt.Fprintf(&b, "%-12v %-5s %10d %8d %5s %5s %s\n",
			ev.Time, ev.Kind, ev.Sector, ev.Sectors*disk.SectorSize, sync, seek, ev.Label)
	}
	return b.String()
}
