package ffs

import (
	"fmt"

	"lfs/internal/cache"
	"lfs/internal/layout"
	"lfs/internal/vfs"
)

// nameEntry is one directory name cache record: the child's inode and
// the directory data block holding the entry. Entries never migrate
// between blocks, so the block number stays valid for the entry's
// lifetime. SunOS's kernel kept the same structure (the namei cache).
type nameEntry struct {
	ino layout.Ino
	lbn int64
}

// nameCacheDirLimit bounds one directory's cached entries.
const nameCacheDirLimit = 32768

// cacheName records name→(ino,lbn) for the directory.
func (fs *FS) cacheName(dir layout.Ino, name string, ino layout.Ino, lbn int64) {
	m := fs.names[dir]
	if m == nil {
		m = make(map[string]nameEntry)
		fs.names[dir] = m
	}
	if len(m) < nameCacheDirLimit {
		m[name] = nameEntry{ino: ino, lbn: lbn}
	}
}

// forgetName drops one cached name.
func (fs *FS) forgetName(dir layout.Ino, name string) {
	if m := fs.names[dir]; m != nil {
		delete(m, name)
	}
}

// forgetDir drops a removed directory's whole cache.
func (fs *FS) forgetDir(dir layout.Ino) {
	delete(fs.names, dir)
	delete(fs.insertHint, dir)
}

// dirBlocks returns the number of data blocks the directory occupies.
func (fs *FS) dirBlocks(dir *layout.Inode) int64 {
	return layout.BlocksForSize(dir.Size, fs.cfg.BlockSize)
}

// dirBlock fetches directory data block lbn through the cache.
func (fs *FS) dirBlock(dir *layout.Inode, lbn int64) (*cache.Block, error) {
	pb, _, _, err := fs.bmap(dir, lbn, false)
	if err != nil {
		return nil, err
	}
	if pb < 0 {
		return nil, fmt.Errorf("ffs: directory %d has a hole at block %d", dir.Ino, lbn)
	}
	return fs.getBlock(pb, true, "dir data")
}

// dirLookup searches the directory for name, consulting the name
// cache first.
func (fs *FS) dirLookup(dir *layout.Inode, name string) (layout.Ino, bool, error) {
	if e, ok := fs.names[dir.Ino][name]; ok {
		return e.ino, true, nil
	}
	for lbn := int64(0); lbn < fs.dirBlocks(dir); lbn++ {
		b, err := fs.dirBlock(dir, lbn)
		if err != nil {
			return 0, false, err
		}
		ino, found, err := layout.DirBlockFind(b.Data, name)
		if err != nil {
			return 0, false, err
		}
		if found {
			fs.cacheName(dir.Ino, name, ino, lbn)
			return ino, true, nil
		}
	}
	return 0, false, nil
}

// dirInsert adds name->ino, growing the directory when no block has
// room. It returns the modified data block so the caller can force it
// to disk synchronously (the creat path), and whether the directory
// inode changed (growth).
func (fs *FS) dirInsert(dir *layout.Inode, name string, ino layout.Ino) (*cache.Block, bool, error) {
	for lbn := fs.insertHint[dir.Ino]; lbn < fs.dirBlocks(dir); lbn++ {
		b, err := fs.dirBlock(dir, lbn)
		if err != nil {
			return nil, false, err
		}
		ok, err := layout.DirBlockInsert(b.Data, layout.DirEntry{Ino: ino, Name: name})
		if err != nil {
			return nil, false, err
		}
		if ok {
			fs.dirty(b)
			fs.insertHint[dir.Ino] = lbn
			fs.cacheName(dir.Ino, name, ino, lbn)
			return b, false, nil
		}
	}
	// Grow the directory by one block.
	lbn := fs.dirBlocks(dir)
	pb, _, _, err := fs.bmap(dir, lbn, true)
	if err != nil {
		return nil, false, err
	}
	b, err := fs.getBlock(pb, false, "dir data")
	if err != nil {
		return nil, false, err
	}
	layout.InitDirBlock(b.Data)
	ok, err := layout.DirBlockInsert(b.Data, layout.DirEntry{Ino: ino, Name: name})
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, fmt.Errorf("ffs: entry %q does not fit in an empty block", name)
	}
	fs.dirty(b)
	dir.Size += uint64(fs.cfg.BlockSize)
	fs.insertHint[dir.Ino] = lbn
	fs.cacheName(dir.Ino, name, ino, lbn)
	return b, true, nil
}

// dirRemove deletes name from the directory, returning the modified
// block for synchronous write-out. The name cache points straight at
// the entry's block.
func (fs *FS) dirRemove(dir *layout.Inode, name string) (*cache.Block, error) {
	start := int64(0)
	if e, ok := fs.names[dir.Ino][name]; ok {
		start = e.lbn
	}
	for pass := 0; pass < 2; pass++ {
		for lbn := start; lbn < fs.dirBlocks(dir); lbn++ {
			b, err := fs.dirBlock(dir, lbn)
			if err != nil {
				return nil, err
			}
			removed, err := layout.DirBlockRemove(b.Data, name)
			if err != nil {
				return nil, err
			}
			if removed {
				fs.dirty(b)
				fs.forgetName(dir.Ino, name)
				if hint, ok := fs.insertHint[dir.Ino]; ok && lbn < hint {
					fs.insertHint[dir.Ino] = lbn
				}
				return b, nil
			}
		}
		if start == 0 {
			break
		}
		start = 0
	}
	return nil, fmt.Errorf("%w: %q", vfs.ErrNotExist, name)
}

// dirEntries lists the directory in name order.
func (fs *FS) dirEntries(dir *layout.Inode) ([]layout.DirEntry, error) {
	var all []layout.DirEntry
	for lbn := int64(0); lbn < fs.dirBlocks(dir); lbn++ {
		b, err := fs.dirBlock(dir, lbn)
		if err != nil {
			return nil, err
		}
		entries, err := layout.DirBlockEntries(b.Data)
		if err != nil {
			return nil, err
		}
		all = append(all, entries...)
	}
	layout.SortEntries(all)
	return all, nil
}

// dirEmpty reports whether the directory has no entries.
func (fs *FS) dirEmpty(dir *layout.Inode) (bool, error) {
	for lbn := int64(0); lbn < fs.dirBlocks(dir); lbn++ {
		b, err := fs.dirBlock(dir, lbn)
		if err != nil {
			return false, err
		}
		n, err := layout.DirBlockCount(b.Data)
		if err != nil {
			return false, err
		}
		if n > 0 {
			return false, nil
		}
	}
	return true, nil
}

// resolve walks the path components from the root, charging lookup
// cost per component, and returns the final inode.
func (fs *FS) resolve(parts []string) (layout.Inode, error) {
	in, err := fs.readInode(layout.RootIno)
	if err != nil {
		return layout.Inode{}, err
	}
	for i, name := range parts {
		fs.cpu.Charge(fs.cfg.Costs.PathComponent)
		if !in.Mode.IsDir() {
			return layout.Inode{}, fmt.Errorf("%w: %q", vfs.ErrNotDir, parts[:i])
		}
		ino, found, err := fs.dirLookup(&in, name)
		if err != nil {
			return layout.Inode{}, err
		}
		if !found {
			return layout.Inode{}, fmt.Errorf("%w: %q", vfs.ErrNotExist, parts[:i+1])
		}
		in, err = fs.readInode(ino)
		if err != nil {
			return layout.Inode{}, err
		}
		if !in.Allocated() {
			return layout.Inode{}, fmt.Errorf("ffs: directory entry %q points at free inode %d", name, ino)
		}
	}
	return in, nil
}

// resolveDir resolves parts and requires a directory.
func (fs *FS) resolveDir(parts []string) (layout.Inode, error) {
	in, err := fs.resolve(parts)
	if err != nil {
		return layout.Inode{}, err
	}
	if !in.Mode.IsDir() {
		return layout.Inode{}, fmt.Errorf("%w: %q", vfs.ErrNotDir, parts)
	}
	return in, nil
}
