package ffs

import (
	"fmt"
	"sort"

	"lfs/internal/disk"
	"lfs/internal/layout"
	"lfs/internal/sim"
)

// FsckReport summarises a full-scan consistency check.
type FsckReport struct {
	// Duration is the simulated time the scan took. This is the
	// number the paper contrasts with LFS's checkpoint mount: fsck
	// reads every inode table and walks every file, so its cost
	// grows with the file system, not with the crash damage.
	Duration sim.Duration
	// InodesScanned counts inode slots examined.
	InodesScanned int
	// FilesFound counts allocated inodes reachable from the root.
	FilesFound int
	// BlocksInUse counts data and indirect blocks referenced by
	// reachable files.
	BlocksInUse int64
	// Problems lists inconsistencies found (orphaned inodes, bitmap
	// mismatches, cross-allocated blocks).
	Problems []string
}

// Fsck performs a full-disk scan in the style of the BSD fsck: it
// reads every bitmap and inode table block, walks every allocated
// inode's block pointers, and cross-checks reachability from the root
// and bitmap consistency. The file system must be freshly mounted
// (i.e. run Fsck before issuing operations); it reads through the
// disk, not the cache, so the simulated cost is honest.
func Fsck(d *disk.Disk, cfg Config) (*FsckReport, error) {
	start := d.Clock().Now()
	buf := make([]byte, cfg.BlockSize)
	if err := d.ReadSectors(0, buf, disk.CauseTool, "fsck: superblock"); err != nil {
		return nil, err
	}
	sb, err := decodeSuperblock(buf)
	if err != nil {
		return nil, err
	}
	lay := newLayout(sb)
	rep := &FsckReport{}

	// Pass 1: read every bitmap and inode table block; collect
	// allocated inodes and claimed blocks.
	type inodeRec struct {
		in layout.Inode
	}
	inodes := make(map[layout.Ino]inodeRec)
	blockBitmap := make(map[int64]bool) // physical block -> allocated per bitmap
	inodeBitmap := make(map[layout.Ino]bool)
	for g := 0; g < int(sb.Groups); g++ {
		bm := make([]byte, cfg.BlockSize)
		if err := d.ReadSectors(lay.bitmapBlock(g)*lay.sectorsPerBlock, bm, disk.CauseTool, "fsck: bitmap"); err != nil {
			return nil, err
		}
		for b := 0; b < int(sb.BlocksPerGroup); b++ {
			if testBit(bm, b) {
				blockBitmap[lay.groupStart(g)+int64(b)] = true
			}
		}
		for s := 0; s < int(sb.InodesPerGroup); s++ {
			if testBit(bm[lay.inodeBitmapOff:], s) {
				inodeBitmap[lay.inoFor(g, s)] = true
			}
		}
		for tb := 0; tb < lay.itBlocks; tb++ {
			it := make([]byte, cfg.BlockSize)
			pb := lay.inodeTableStart(g) + int64(tb)
			if err := d.ReadSectors(pb*lay.sectorsPerBlock, it, disk.CauseTool, "fsck: inode table"); err != nil {
				return nil, err
			}
			for slot := tb * lay.inodesPerBlock; slot < (tb+1)*lay.inodesPerBlock && slot < int(sb.InodesPerGroup); slot++ {
				rep.InodesScanned++
				off := (slot % lay.inodesPerBlock) * inodeSlotSize
				raw := it[off : off+inodeSlotSize]
				zero := true
				for _, x := range raw {
					if x != 0 {
						zero = false
						break
					}
				}
				if zero {
					continue
				}
				in, err := layout.DecodeInode(raw)
				if err != nil {
					rep.Problems = append(rep.Problems, fmt.Sprintf("group %d slot %d: %v", g, slot, err))
					continue
				}
				if in.Allocated() {
					inodes[in.Ino] = inodeRec{in: in}
				}
			}
		}
	}

	// Pass 2: walk reachable files from the root, counting their
	// blocks and verifying each claimed block is marked allocated
	// and claimed only once.
	claimed := make(map[int64]layout.Ino)
	var walkBlocks func(in *layout.Inode) error
	readBlock := func(pb int64, p []byte) error {
		return d.ReadSectors(pb*lay.sectorsPerBlock, p, disk.CauseTool, "fsck: walk")
	}
	claim := func(a layout.DiskAddr, ino layout.Ino) {
		if a.IsNil() {
			return
		}
		pb := lay.blockOf(a)
		rep.BlocksInUse++
		if !blockBitmap[pb] {
			rep.Problems = append(rep.Problems, fmt.Sprintf("inode %d references unallocated block %d", ino, pb))
		}
		if prev, dup := claimed[pb]; dup {
			rep.Problems = append(rep.Problems, fmt.Sprintf("block %d claimed by inodes %d and %d", pb, prev, ino))
		}
		claimed[pb] = ino
	}
	apb := layout.AddrsPerBlock(cfg.BlockSize)
	walkBlocks = func(in *layout.Inode) error {
		for _, a := range in.Direct {
			claim(a, in.Ino)
		}
		if !in.Indirect.IsNil() {
			claim(in.Indirect, in.Ino)
			ib := make([]byte, cfg.BlockSize)
			if err := readBlock(lay.blockOf(in.Indirect), ib); err != nil {
				return err
			}
			for _, a := range layout.DecodeAddrBlock(ib, apb) {
				claim(a, in.Ino)
			}
		}
		if !in.DoubleIndirect.IsNil() {
			claim(in.DoubleIndirect, in.Ino)
			ob := make([]byte, cfg.BlockSize)
			if err := readBlock(lay.blockOf(in.DoubleIndirect), ob); err != nil {
				return err
			}
			for _, oa := range layout.DecodeAddrBlock(ob, apb) {
				if oa.IsNil() {
					continue
				}
				claim(oa, in.Ino)
				ib := make([]byte, cfg.BlockSize)
				if err := readBlock(lay.blockOf(oa), ib); err != nil {
					return err
				}
				for _, a := range layout.DecodeAddrBlock(ib, apb) {
					claim(a, in.Ino)
				}
			}
		}
		return nil
	}

	// refs counts directory entries per inode; hard links make
	// multiple references to regular files legitimate.
	refs := make(map[layout.Ino]int)
	var walkDir func(ino layout.Ino) error
	walkDir = func(ino layout.Ino) error {
		rec, ok := inodes[ino]
		if !ok {
			rep.Problems = append(rep.Problems, fmt.Sprintf("directory entry references missing inode %d", ino))
			return nil
		}
		refs[ino]++
		if refs[ino] > 1 {
			if rec.in.Mode.IsDir() {
				rep.Problems = append(rep.Problems, fmt.Sprintf("directory inode %d reached twice", ino))
			}
			return nil
		}
		rep.FilesFound++
		in := rec.in
		if err := walkBlocks(&in); err != nil {
			return err
		}
		if !in.Mode.IsDir() {
			return nil
		}
		// Scan directory entries.
		blocks := layout.BlocksForSize(in.Size, cfg.BlockSize)
		for lbn := int64(0); lbn < blocks; lbn++ {
			path, err := layout.MapBlock(lbn, cfg.BlockSize)
			if err != nil {
				return err
			}
			var a layout.DiskAddr
			switch path.Level {
			case 0:
				a = in.Direct[path.Direct]
			case 1:
				if in.Indirect.IsNil() {
					continue
				}
				ib := make([]byte, cfg.BlockSize)
				if err := readBlock(lay.blockOf(in.Indirect), ib); err != nil {
					return err
				}
				a = layout.DecodeAddrBlock(ib, apb)[path.Inner]
			default:
				continue // directories never reach double indirection here
			}
			if a.IsNil() {
				continue
			}
			db := make([]byte, cfg.BlockSize)
			if err := readBlock(lay.blockOf(a), db); err != nil {
				return err
			}
			entries, err := layout.DirBlockEntries(db)
			if err != nil {
				rep.Problems = append(rep.Problems, fmt.Sprintf("inode %d dir block %d: %v", ino, lbn, err))
				continue
			}
			for _, e := range entries {
				if err := walkDir(e.Ino); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walkDir(layout.RootIno); err != nil {
		return nil, err
	}

	// Pass 3: cross-checks, including link counts. Problems are
	// reported in ascending inode order: the report is part of the
	// deterministic output contract (lfsck prints it, tests golden
	// it), so it must not inherit map iteration order.
	inos := make([]layout.Ino, 0, len(inodes))
	for ino := range inodes {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	for _, ino := range inos {
		rec := inodes[ino]
		if refs[ino] == 0 {
			rep.Problems = append(rep.Problems, fmt.Sprintf("inode %d allocated but unreachable", ino))
		}
		if !inodeBitmap[ino] {
			rep.Problems = append(rep.Problems, fmt.Sprintf("inode %d in use but free in bitmap", ino))
		}
		if ino != layout.RootIno && !rec.in.Mode.IsDir() && refs[ino] > 0 && int(rec.in.Nlink) != refs[ino] {
			rep.Problems = append(rep.Problems, fmt.Sprintf("inode %d has nlink %d but %d directory entries", ino, rec.in.Nlink, refs[ino]))
		}
	}
	rep.Duration = d.Clock().Now().Sub(start)
	return rep, nil
}
