package ffs

import (
	"testing"

	"lfs/internal/disk"
	"lfs/internal/layout"
	"lfs/internal/sim"
)

func newTestFS(t *testing.T, capacity int64) *FS {
	t.Helper()
	d := disk.NewMem(capacity, sim.NewClock())
	cfg := DefaultConfig()
	if err := Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestLayoutArithmetic(t *testing.T) {
	sb := superblock{BlockSize: 8192, BlocksPerGroup: 256, InodesPerGroup: 512, Groups: 4, TotalBlocks: 1025}
	lay := newLayout(sb)
	if lay.sectorsPerBlock != 16 {
		t.Fatalf("sectorsPerBlock = %d", lay.sectorsPerBlock)
	}
	if lay.inodesPerBlock != 8192/layout.InodeSize {
		t.Fatalf("inodesPerBlock = %d", lay.inodesPerBlock)
	}
	// Group starts advance by BlocksPerGroup from block 1.
	if lay.groupStart(0) != 1 || lay.groupStart(1) != 257 {
		t.Fatalf("group starts = %d, %d", lay.groupStart(0), lay.groupStart(1))
	}
	// Data region begins after the bitmap and inode table.
	want := lay.groupStart(2) + 1 + int64(lay.itBlocks)
	if lay.dataStart(2) != want {
		t.Fatalf("dataStart = %d, want %d", lay.dataStart(2), want)
	}
	// Ino <-> (group, slot) round trip.
	for _, ino := range []layout.Ino{1, 2, 512, 513, 1024, 2048} {
		g, s := lay.groupOf(ino), lay.slotOf(ino)
		if lay.inoFor(g, s) != ino {
			t.Fatalf("ino %d -> (%d,%d) -> %d", ino, g, s, lay.inoFor(g, s))
		}
	}
	if !lay.validIno(1) || !lay.validIno(lay.maxIno()) || lay.validIno(0) || lay.validIno(lay.maxIno()+1) {
		t.Fatal("validIno boundaries wrong")
	}
	// Block <-> group mapping.
	if lay.blockToGroup(0) != -1 {
		t.Fatal("superblock mapped to a group")
	}
	if lay.blockToGroup(1) != 0 || lay.blockToGroup(256) != 0 || lay.blockToGroup(257) != 1 {
		t.Fatal("blockToGroup boundaries wrong")
	}
	// Address conversions invert each other.
	for _, pb := range []int64{1, 100, 1000} {
		if lay.blockOf(lay.addrOf(pb)) != pb {
			t.Fatalf("addr round trip failed for block %d", pb)
		}
	}
}

func TestBitOps(t *testing.T) {
	bm := make([]byte, 4)
	for i := 0; i < 32; i++ {
		if testBit(bm, i) {
			t.Fatalf("fresh bit %d set", i)
		}
	}
	setBit(bm, 0)
	setBit(bm, 7)
	setBit(bm, 8)
	setBit(bm, 31)
	for i := 0; i < 32; i++ {
		want := i == 0 || i == 7 || i == 8 || i == 31
		if testBit(bm, i) != want {
			t.Fatalf("bit %d = %v", i, testBit(bm, i))
		}
	}
	clearBit(bm, 7)
	if testBit(bm, 7) {
		t.Fatal("clearBit failed")
	}
	if !testBit(bm, 0) || !testBit(bm, 8) {
		t.Fatal("clearBit clobbered neighbours")
	}
}

// TestInodePlacementPolicy: files go to their parent directory's
// group; new directories spread across groups.
func TestInodePlacementPolicy(t *testing.T) {
	fs := newTestFS(t, 64<<20)
	// Create several directories; they should land in different
	// groups.
	groups := map[int]bool{}
	for i := 0; i < 4; i++ {
		p := string(rune('a' + i)) // /a /b /c /d
		if err := fs.Mkdir("/" + p); err != nil {
			t.Fatal(err)
		}
		fi, err := fs.Stat("/" + p)
		if err != nil {
			t.Fatal(err)
		}
		groups[fs.lay.groupOf(fi.Ino)] = true
	}
	if len(groups) < 2 {
		t.Fatalf("4 directories all in %d group(s); they should spread", len(groups))
	}
	// Files share their parent's group.
	if err := fs.Create("/a/child"); err != nil {
		t.Fatal(err)
	}
	dirFi, _ := fs.Stat("/a")
	fileFi, _ := fs.Stat("/a/child")
	if fs.lay.groupOf(dirFi.Ino) != fs.lay.groupOf(fileFi.Ino) {
		t.Fatalf("file in group %d, parent dir in group %d",
			fs.lay.groupOf(fileFi.Ino), fs.lay.groupOf(dirFi.Ino))
	}
}

// TestDataBlockLocality: a file's data blocks are allocated in its
// inode's cylinder group while space lasts.
func TestDataBlockLocality(t *testing.T) {
	fs := newTestFS(t, 64<<20)
	if err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/f", 0, make([]byte, 10*8192)); err != nil {
		t.Fatal(err)
	}
	in, err := fs.readInode(2) // first file after root
	if err != nil {
		t.Fatal(err)
	}
	fi, _ := fs.Stat("/f")
	in, err = fs.readInode(fi.Ino)
	if err != nil {
		t.Fatal(err)
	}
	g := fs.lay.groupOf(in.Ino)
	for i := 0; i < 10; i++ {
		a := in.Direct[i]
		if a.IsNil() {
			t.Fatalf("block %d unallocated", i)
		}
		if fs.lay.blockToGroup(fs.lay.blockOf(a)) != g {
			t.Fatalf("block %d allocated in group %d, inode in group %d",
				i, fs.lay.blockToGroup(fs.lay.blockOf(a)), g)
		}
	}
}

// TestAllocSpillsToOtherGroups: when the preferred group fills, the
// allocator moves on rather than failing.
func TestAllocSpillsToOtherGroups(t *testing.T) {
	fs := newTestFS(t, 16<<20)
	// One group holds ~2MB of data; write 6MB into one file.
	if err := fs.Create("/big"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/big", 0, make([]byte, 6<<20)); err != nil {
		t.Fatalf("cross-group allocation failed: %v", err)
	}
	fi, _ := fs.Stat("/big")
	if fi.Size != 6<<20 {
		t.Fatalf("size = %d", fi.Size)
	}
}

func TestFreeBlockDoubleFree(t *testing.T) {
	fs := newTestFS(t, 16<<20)
	pb, err := fs.allocBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.freeBlock(pb); err != nil {
		t.Fatal(err)
	}
	if err := fs.freeBlock(pb); err == nil {
		t.Fatal("double free succeeded")
	}
}

func TestSuperblockRoundTrip(t *testing.T) {
	sb := superblock{BlockSize: 8192, BlocksPerGroup: 256, InodesPerGroup: 512, Groups: 37, TotalBlocks: 9473}
	buf := make([]byte, 8192)
	sb.encode(buf)
	got, err := decodeSuperblock(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != sb {
		t.Fatalf("round trip: %+v vs %+v", got, sb)
	}
	buf[5] ^= 0xFF
	if _, err := decodeSuperblock(buf); err == nil {
		t.Fatal("corrupted superblock decoded")
	}
}
