package ffs

import (
	"fmt"

	"lfs/internal/cache"
	"lfs/internal/disk"
	"lfs/internal/layout"
)

// fillNil initialises a fresh indirect block so every entry decodes as
// NilAddr (a hole).
func fillNil(p []byte) {
	for i := range p {
		p[i] = 0xFF
	}
}

// loadAddr reads entry idx of a cached indirect block.
func loadAddr(b *cache.Block, idx int) layout.DiskAddr {
	return layout.DecodeAddrBlock(b.Data[idx*layout.AddrSize:], 1)[0]
}

// storeAddr writes entry idx of a cached indirect block.
func storeAddr(b *cache.Block, idx int, a layout.DiskAddr) {
	layout.EncodeAddrBlock([]layout.DiskAddr{a}, b.Data[idx*layout.AddrSize:])
}

// bmap resolves logical block lbn of the inode to a physical block.
// With alloc true, missing data and indirect blocks are allocated near
// the inode's group. It returns pb == -1 for a hole when alloc is
// false. inodeChanged reports that the caller must write the inode
// back.
func (fs *FS) bmap(in *layout.Inode, lbn int64, alloc bool) (pb int64, isNew, inodeChanged bool, err error) {
	path, err := layout.MapBlock(lbn, fs.cfg.BlockSize)
	if err != nil {
		return 0, false, false, err
	}
	group := fs.lay.groupOf(in.Ino)

	// ensure returns the block behind addr, allocating a fresh
	// indirect block when absent.
	ensureIndirect := func(addr layout.DiskAddr) (*cache.Block, layout.DiskAddr, bool, error) {
		if !addr.IsNil() {
			b, err := fs.getBlock(fs.lay.blockOf(addr), true, "indirect")
			return b, addr, false, err
		}
		if !alloc {
			return nil, layout.NilAddr, false, nil
		}
		npb, err := fs.allocBlock(group)
		if err != nil {
			return nil, layout.NilAddr, false, err
		}
		b, err := fs.getBlock(npb, false, "indirect")
		if err != nil {
			return nil, layout.NilAddr, false, err
		}
		fillNil(b.Data)
		fs.dirty(b)
		return b, fs.lay.addrOf(npb), true, nil
	}

	switch path.Level {
	case 0:
		addr := in.Direct[path.Direct]
		if addr.IsNil() {
			if !alloc {
				return -1, false, false, nil
			}
			npb, err := fs.allocBlock(group)
			if err != nil {
				return 0, false, false, err
			}
			in.Direct[path.Direct] = fs.lay.addrOf(npb)
			return npb, true, true, nil
		}
		return fs.lay.blockOf(addr), false, false, nil

	case 1:
		ib, addr, created, err := ensureIndirect(in.Indirect)
		if err != nil {
			return 0, false, false, err
		}
		if ib == nil {
			return -1, false, false, nil
		}
		if created {
			in.Indirect = addr
			inodeChanged = true
		}
		entry := loadAddr(ib, path.Inner)
		if entry.IsNil() {
			if !alloc {
				return -1, false, inodeChanged, nil
			}
			npb, err := fs.allocBlock(group)
			if err != nil {
				return 0, false, inodeChanged, err
			}
			storeAddr(ib, path.Inner, fs.lay.addrOf(npb))
			fs.dirty(ib)
			return npb, true, inodeChanged, nil
		}
		return fs.lay.blockOf(entry), false, inodeChanged, nil

	case 2:
		outer, addr, created, err := ensureIndirect(in.DoubleIndirect)
		if err != nil {
			return 0, false, false, err
		}
		if outer == nil {
			return -1, false, false, nil
		}
		if created {
			in.DoubleIndirect = addr
			inodeChanged = true
		}
		innerAddr := loadAddr(outer, path.Outer)
		inner, newInnerAddr, createdInner, err := ensureIndirect(innerAddr)
		if err != nil {
			return 0, false, inodeChanged, err
		}
		if inner == nil {
			return -1, false, inodeChanged, nil
		}
		if createdInner {
			storeAddr(outer, path.Outer, newInnerAddr)
			fs.dirty(outer)
		}
		entry := loadAddr(inner, path.Inner)
		if entry.IsNil() {
			if !alloc {
				return -1, false, inodeChanged, nil
			}
			npb, err := fs.allocBlock(group)
			if err != nil {
				return 0, false, inodeChanged, err
			}
			storeAddr(inner, path.Inner, fs.lay.addrOf(npb))
			fs.dirty(inner)
			return npb, true, inodeChanged, nil
		}
		return fs.lay.blockOf(entry), false, inodeChanged, nil
	}
	return 0, false, false, fmt.Errorf("ffs: unreachable bmap level")
}

// readAheadBlocks is how many physically contiguous blocks a
// cache-miss read fetches in one transfer — the standard UNIX
// read-ahead SunOS performed. FFS allocates sequential files
// contiguously within a cylinder group, so sequential reads benefit;
// that is also why the baseline wins the paper's
// seq-reread-after-random-write case (its file stays contiguous on
// disk while LFS's is scattered through the log).
const readAheadBlocks = 8

// readBlockRA fetches file block lbn through the cache. On a miss
// during a detected sequential scan it reads up to readAheadBlocks
// physically contiguous blocks in one request.
func (fs *FS) readBlockRA(in *layout.Inode, lbn int64) (*cache.Block, error) {
	sequential := lbn == 0 || fs.lastRead[in.Ino]+1 == lbn
	fs.lastRead[in.Ino] = lbn
	pb, _, _, err := fs.bmap(in, lbn, false)
	if err != nil {
		return nil, err
	}
	if pb < 0 {
		return nil, nil // hole
	}
	if b := fs.bc.Get(blockKey(pb)); b != nil {
		fs.cpu.Charge(fs.cfg.Costs.BlockSetup)
		return b, nil
	}
	maxLbn := layout.BlocksForSize(in.Size, fs.cfg.BlockSize)
	limit := 1
	if sequential {
		limit = readAheadBlocks
	}
	run := 1
	for run < limit && lbn+int64(run) < maxLbn {
		next, _, _, err := fs.bmap(in, lbn+int64(run), false)
		if err != nil {
			return nil, err
		}
		if next != pb+int64(run) || fs.bc.Peek(blockKey(next)) != nil {
			break
		}
		run++
	}
	bs := fs.cfg.BlockSize
	fs.cpu.Charge(fs.cfg.Costs.BlockSetup + fs.cfg.Costs.DiskOpSetup)
	span := make([]byte, run*bs)
	if err := fs.d.ReadSectors(fs.lay.sectorOf(pb), span, disk.CauseReadMiss, "file read"); err != nil {
		return nil, err
	}
	var first *cache.Block
	for i := 0; i < run; i++ {
		b := fs.bc.Add(blockKey(pb + int64(i)))
		copy(b.Data, span[i*bs:(i+1)*bs])
		if i == 0 {
			first = b
		}
	}
	return first, nil
}

// readFile copies file bytes [off, off+len(buf)) into buf, clamped to
// the file size. It returns the byte count.
func (fs *FS) readFile(in *layout.Inode, off int64, buf []byte) (int, error) {
	size := int64(in.Size)
	if off >= size {
		return 0, nil
	}
	if max := size - off; int64(len(buf)) > max {
		buf = buf[:max]
	}
	bs := int64(fs.cfg.BlockSize)
	read := 0
	for read < len(buf) {
		pos := off + int64(read)
		lbn := pos / bs
		bo := pos % bs
		n := int(bs - bo)
		if n > len(buf)-read {
			n = len(buf) - read
		}
		b, err := fs.readBlockRA(in, lbn)
		if err != nil {
			return read, err
		}
		if b == nil {
			// Hole: zero fill.
			for i := 0; i < n; i++ {
				buf[read+i] = 0
			}
		} else {
			copy(buf[read:read+n], b.Data[bo:])
		}
		fs.cpu.Charge(fs.cfg.Costs.Copy(n))
		read += n
	}
	return read, nil
}

// writeFile stores data at off, allocating blocks as needed. It
// returns whether the inode changed (size, mtime, or block pointers).
func (fs *FS) writeFile(in *layout.Inode, off int64, data []byte) (bool, error) {
	bs := int64(fs.cfg.BlockSize)
	inodeChanged := false
	written := 0
	for written < len(data) {
		pos := off + int64(written)
		lbn := pos / bs
		bo := pos % bs
		n := int(bs - bo)
		if n > len(data)-written {
			n = len(data) - written
		}
		pb, isNew, changed, err := fs.bmap(in, lbn, true)
		if err != nil {
			return inodeChanged, err
		}
		inodeChanged = inodeChanged || changed
		// A full-block overwrite (or a brand new block) needs no
		// read-modify-write.
		full := isNew || (bo == 0 && n == int(bs))
		var b *cache.Block
		if full {
			if b = fs.bc.Peek(blockKey(pb)); b == nil {
				b, err = fs.getBlock(pb, false, "file write")
			} else {
				fs.cpu.Charge(fs.cfg.Costs.BlockSetup)
			}
		} else {
			b, err = fs.getBlock(pb, true, "file write")
		}
		if err != nil {
			return inodeChanged, err
		}
		if isNew {
			for i := range b.Data {
				b.Data[i] = 0
			}
		}
		copy(b.Data[bo:], data[written:written+n])
		fs.cpu.Charge(fs.cfg.Costs.Copy(n))
		fs.dirty(b)
		written += n
	}
	if end := uint64(off) + uint64(len(data)); end > in.Size {
		in.Size = end
		inodeChanged = true
	}
	return inodeChanged, nil
}

// truncateFile sets the file length, freeing blocks on shrink and
// zeroing the tail of a shortened final block so regrowth reads zeros.
func (fs *FS) truncateFile(in *layout.Inode, size int64) error {
	bs := int64(fs.cfg.BlockSize)
	oldBlocks := layout.BlocksForSize(in.Size, fs.cfg.BlockSize)
	newBlocks := layout.BlocksForSize(uint64(size), fs.cfg.BlockSize)

	// Free whole blocks beyond the new end.
	for lbn := newBlocks; lbn < oldBlocks; lbn++ {
		if err := fs.freeFileBlock(in, lbn); err != nil {
			return err
		}
	}
	if newBlocks < oldBlocks {
		if err := fs.pruneIndirects(in, newBlocks); err != nil {
			return err
		}
	}
	// Zero the tail of the (remaining) final block.
	if size > 0 && size%bs != 0 && size < int64(in.Size) {
		lbn := size / bs
		pb, _, _, err := fs.bmap(in, lbn, false)
		if err != nil {
			return err
		}
		if pb >= 0 {
			b, err := fs.getBlock(pb, true, "truncate tail")
			if err != nil {
				return err
			}
			for i := size % bs; i < bs; i++ {
				b.Data[i] = 0
			}
			fs.dirty(b)
		}
	}
	in.Size = uint64(size)
	return nil
}

// freeFileBlock frees the data block behind lbn (if any) and clears
// its pointer.
func (fs *FS) freeFileBlock(in *layout.Inode, lbn int64) error {
	path, err := layout.MapBlock(lbn, fs.cfg.BlockSize)
	if err != nil {
		return err
	}
	switch path.Level {
	case 0:
		if a := in.Direct[path.Direct]; !a.IsNil() {
			if err := fs.freeBlock(fs.lay.blockOf(a)); err != nil {
				return err
			}
			in.Direct[path.Direct] = layout.NilAddr
		}
	case 1:
		if in.Indirect.IsNil() {
			return nil
		}
		ib, err := fs.getBlock(fs.lay.blockOf(in.Indirect), true, "indirect")
		if err != nil {
			return err
		}
		if a := loadAddr(ib, path.Inner); !a.IsNil() {
			if err := fs.freeBlock(fs.lay.blockOf(a)); err != nil {
				return err
			}
			storeAddr(ib, path.Inner, layout.NilAddr)
			fs.dirty(ib)
		}
	case 2:
		if in.DoubleIndirect.IsNil() {
			return nil
		}
		outer, err := fs.getBlock(fs.lay.blockOf(in.DoubleIndirect), true, "indirect")
		if err != nil {
			return err
		}
		innerAddr := loadAddr(outer, path.Outer)
		if innerAddr.IsNil() {
			return nil
		}
		inner, err := fs.getBlock(fs.lay.blockOf(innerAddr), true, "indirect")
		if err != nil {
			return err
		}
		if a := loadAddr(inner, path.Inner); !a.IsNil() {
			if err := fs.freeBlock(fs.lay.blockOf(a)); err != nil {
				return err
			}
			storeAddr(inner, path.Inner, layout.NilAddr)
			fs.dirty(inner)
		}
	}
	return nil
}

// pruneIndirects frees indirect blocks that no longer map any block
// below newBlocks.
func (fs *FS) pruneIndirects(in *layout.Inode, newBlocks int64) error {
	apb := int64(layout.AddrsPerBlock(fs.cfg.BlockSize))
	// Single indirect covers [NDirect, NDirect+apb).
	if newBlocks <= layout.NDirect && !in.Indirect.IsNil() {
		if err := fs.freeBlock(fs.lay.blockOf(in.Indirect)); err != nil {
			return err
		}
		in.Indirect = layout.NilAddr
	}
	// Double indirect covers [NDirect+apb, ...).
	doubleStart := int64(layout.NDirect) + apb
	if in.DoubleIndirect.IsNil() {
		return nil
	}
	outer, err := fs.getBlock(fs.lay.blockOf(in.DoubleIndirect), true, "indirect")
	if err != nil {
		return err
	}
	// keepOuter is the number of inner indirect blocks still needed.
	keepOuter := int64(0)
	if newBlocks > doubleStart {
		keepOuter = (newBlocks - doubleStart + apb - 1) / apb
	}
	changedOuter := false
	for idx := keepOuter; idx < apb; idx++ {
		a := loadAddr(outer, int(idx))
		if a.IsNil() {
			continue
		}
		if err := fs.freeBlock(fs.lay.blockOf(a)); err != nil {
			return err
		}
		storeAddr(outer, int(idx), layout.NilAddr)
		changedOuter = true
	}
	if keepOuter == 0 {
		if err := fs.freeBlock(fs.lay.blockOf(in.DoubleIndirect)); err != nil {
			return err
		}
		in.DoubleIndirect = layout.NilAddr
	} else if changedOuter {
		fs.dirty(outer)
	}
	return nil
}

// freeAllBlocks releases every block of the file (the unlink path).
func (fs *FS) freeAllBlocks(in *layout.Inode) error {
	if err := fs.truncateFile(in, 0); err != nil {
		return err
	}
	return nil
}
