// Package ffs implements the comparison baseline of the paper: an
// update-in-place file system in the style of the BSD Fast File
// System as shipped in SunOS 4.0.3. Its defining behaviours — the ones
// Figures 1 and 3 of the paper measure — are:
//
//   - metadata is at fixed disk locations (inode tables and allocation
//     bitmaps inside cylinder groups), so creating or deleting a file
//     performs small *random* writes;
//   - the inode block and the directory data block are written
//     *synchronously* during creat/unlink to bound crash damage, so
//     application speed is coupled to disk latency;
//   - file data goes through the buffer cache with delayed write-back.
//
// Allocation follows FFS locality policy in miniature: an inode is
// placed in its parent directory's cylinder group, new directories are
// spread across groups, and data blocks prefer their inode's group.
// Crash recovery is a full-disk fsck scan (see fsck.go), the cost the
// paper contrasts with LFS's checkpoint mount.
package ffs

import (
	"fmt"

	"lfs/internal/obs"
	"lfs/internal/sim"
)

// Config carries the tunables of an FFS instance. The zero value is
// not valid; use DefaultConfig.
type Config struct {
	// BlockSize is the file system block size in bytes. SunOS used
	// 8 KB blocks (paper §5).
	BlockSize int
	// BlocksPerGroup is the size of one cylinder group in blocks,
	// including its bitmap and inode-table blocks.
	BlocksPerGroup int
	// InodesPerGroup is the number of inode slots per group.
	InodesPerGroup int
	// CacheBlocks is the buffer cache capacity in blocks. The
	// paper's machines used roughly 15 MB of file cache.
	CacheBlocks int
	// WritebackAge is the delayed write-back threshold; dirty
	// blocks older than this are written at the next operation
	// (UNIX's classic 30 seconds).
	WritebackAge sim.Duration
	// MIPS is the simulated CPU speed.
	MIPS float64
	// Costs is the instruction cost table.
	Costs sim.Costs
	// Trace, when non-nil, receives operation spans and cause-tagged
	// disk events; Mount registers it as the disk's tracer. It may be
	// the same recorder an LFS instance uses, for side-by-side traces
	// on one timeline.
	Trace *obs.Recorder
}

// DefaultConfig returns the configuration used in the paper's
// evaluation: 8 KB blocks, ~15 MB of cache, 30-second write-back, and
// the Sun-4/260 CPU rating.
func DefaultConfig() Config {
	return Config{
		BlockSize:      8192,
		BlocksPerGroup: 256, // 2 MB groups
		InodesPerGroup: 512,
		CacheBlocks:    1920, // ~15 MB at 8 KB
		WritebackAge:   30 * sim.Second,
		MIPS:           sim.Sun4MIPS,
		Costs:          sim.DefaultCosts(),
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.BlockSize <= 0 || c.BlockSize%512 != 0 {
		return fmt.Errorf("ffs: block size %d not a positive multiple of the sector size", c.BlockSize)
	}
	if c.BlocksPerGroup < 8 {
		return fmt.Errorf("ffs: blocks per group %d too small", c.BlocksPerGroup)
	}
	if c.InodesPerGroup <= 0 || c.InodesPerGroup%8 != 0 {
		return fmt.Errorf("ffs: inodes per group %d not a positive multiple of 8", c.InodesPerGroup)
	}
	if c.CacheBlocks <= 4 {
		return fmt.Errorf("ffs: cache of %d blocks too small", c.CacheBlocks)
	}
	if c.WritebackAge <= 0 {
		return fmt.Errorf("ffs: non-positive write-back age %v", c.WritebackAge)
	}
	if c.MIPS <= 0 {
		return fmt.Errorf("ffs: non-positive MIPS %v", c.MIPS)
	}
	// The per-group metadata (1 bitmap block + inode table) must
	// leave room for data blocks.
	if c.metaBlocksPerGroup() >= c.BlocksPerGroup {
		return fmt.Errorf("ffs: group metadata (%d blocks) fills the group (%d blocks)", c.metaBlocksPerGroup(), c.BlocksPerGroup)
	}
	return nil
}

// inodeTableBlocks returns the blocks occupied by one group's inode
// table.
func (c Config) inodeTableBlocks() int {
	bytes := c.InodesPerGroup * inodeSlotSize
	return (bytes + c.BlockSize - 1) / c.BlockSize
}

// metaBlocksPerGroup returns the per-group metadata overhead in
// blocks: the bitmap block plus the inode table.
func (c Config) metaBlocksPerGroup() int { return 1 + c.inodeTableBlocks() }

// sectorsPerBlock returns the disk sectors per file system block.
func (c Config) sectorsPerBlock() int64 { return int64(c.BlockSize / 512) }
