package ffs

import (
	"encoding/binary"
	"fmt"

	"lfs/internal/disk"
	"lfs/internal/layout"
)

// inodeSlotSize is the on-disk inode record size.
const inodeSlotSize = layout.InodeSize

// ffsMagic identifies an FFS superblock.
const ffsMagic = 0x46465331 // "FFS1"

// superblock is the FFS on-disk root structure, stored in block 0.
type superblock struct {
	BlockSize      uint32
	BlocksPerGroup uint32
	InodesPerGroup uint32
	Groups         uint32
	TotalBlocks    uint64
}

// encode writes the superblock into p (one block).
func (sb *superblock) encode(p []byte) {
	for i := range p {
		p[i] = 0
	}
	le := binary.LittleEndian
	le.PutUint32(p[0:], ffsMagic)
	le.PutUint32(p[4:], sb.BlockSize)
	le.PutUint32(p[8:], sb.BlocksPerGroup)
	le.PutUint32(p[12:], sb.InodesPerGroup)
	le.PutUint32(p[16:], sb.Groups)
	le.PutUint64(p[24:], sb.TotalBlocks)
	le.PutUint32(p[60:], layout.Checksum(p[:60]))
}

// decodeSuperblock parses and verifies a superblock.
func decodeSuperblock(p []byte) (superblock, error) {
	le := binary.LittleEndian
	if le.Uint32(p[0:]) != ffsMagic {
		return superblock{}, fmt.Errorf("ffs: bad magic %#x", le.Uint32(p[0:]))
	}
	if got, want := layout.Checksum(p[:60]), le.Uint32(p[60:]); got != want {
		return superblock{}, fmt.Errorf("ffs: superblock checksum mismatch")
	}
	return superblock{
		BlockSize:      le.Uint32(p[4:]),
		BlocksPerGroup: le.Uint32(p[8:]),
		InodesPerGroup: le.Uint32(p[12:]),
		Groups:         le.Uint32(p[16:]),
		TotalBlocks:    le.Uint64(p[24:]),
	}, nil
}

// Format initialises the disk as an empty FFS with a root directory.
func Format(d *disk.Disk, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	totalBlocks := d.Capacity() / int64(cfg.BlockSize)
	// Block 0 is the superblock; groups follow.
	groups := (totalBlocks - 1) / int64(cfg.BlocksPerGroup)
	if groups < 1 {
		return fmt.Errorf("ffs: disk too small for one cylinder group (%d blocks)", totalBlocks)
	}
	sb := superblock{
		BlockSize:      uint32(cfg.BlockSize),
		BlocksPerGroup: uint32(cfg.BlocksPerGroup),
		InodesPerGroup: uint32(cfg.InodesPerGroup),
		Groups:         uint32(groups),
		TotalBlocks:    uint64(totalBlocks),
	}
	buf := make([]byte, cfg.BlockSize)
	sb.encode(buf)
	if err := d.WriteSectors(0, buf, true, disk.CauseFormat, "format: superblock"); err != nil {
		return err
	}

	lay := newLayout(sb)
	// Write each group's bitmap block with metadata blocks marked
	// allocated.
	for g := 0; g < int(groups); g++ {
		bm := make([]byte, cfg.BlockSize)
		for b := 0; b < cfg.metaBlocksPerGroup(); b++ {
			setBit(bm, b)
		}
		if g == 0 {
			// Root inode occupies slot 0 of group 0.
			setBit(bm[lay.inodeBitmapOff:], 0)
		}
		if err := d.WriteSectors(lay.bitmapBlock(g)*lay.sectorsPerBlock, bm, true, disk.CauseFormat, "format: bitmap"); err != nil {
			return err
		}
		// Zero the inode table so stale inodes cannot be mistaken
		// for live ones.
		zero := make([]byte, cfg.BlockSize)
		for b := 0; b < cfg.inodeTableBlocks(); b++ {
			pb := lay.inodeTableStart(g) + int64(b)
			if err := d.WriteSectors(pb*lay.sectorsPerBlock, zero, true, disk.CauseFormat, "format: inode table"); err != nil {
				return err
			}
		}
	}

	// Write the root directory inode.
	root := layout.NewInode(layout.RootIno, layout.ModeDir|0o755)
	root.Nlink = 2
	itBuf := make([]byte, cfg.BlockSize)
	pb := lay.inodeBlock(layout.RootIno)
	if err := d.ReadSectors(pb*lay.sectorsPerBlock, itBuf, disk.CauseFormat, "format"); err != nil {
		return err
	}
	root.Encode(itBuf[lay.inodeOffsetInBlock(layout.RootIno):])
	return d.WriteSectors(pb*lay.sectorsPerBlock, itBuf, true, disk.CauseFormat, "format: root inode")
}

// diskLayout precomputes the address arithmetic of an FFS instance.
type diskLayout struct {
	sb              superblock
	sectorsPerBlock int64
	inodeBitmapOff  int // byte offset of the inode bitmap within the bitmap block
	inodesPerBlock  int
	itBlocks        int // inode table blocks per group
	metaBlocks      int
}

func newLayout(sb superblock) diskLayout {
	bs := int(sb.BlockSize)
	itBytes := int(sb.InodesPerGroup) * inodeSlotSize
	itBlocks := (itBytes + bs - 1) / bs
	return diskLayout{
		sb:              sb,
		sectorsPerBlock: int64(bs / 512),
		inodeBitmapOff:  (int(sb.BlocksPerGroup) + 7) / 8,
		inodesPerBlock:  bs / inodeSlotSize,
		itBlocks:        itBlocks,
		metaBlocks:      1 + itBlocks,
	}
}

// groupStart returns the first block of group g.
func (l diskLayout) groupStart(g int) int64 {
	return 1 + int64(g)*int64(l.sb.BlocksPerGroup)
}

// bitmapBlock returns the physical block holding group g's bitmaps.
func (l diskLayout) bitmapBlock(g int) int64 { return l.groupStart(g) }

// inodeTableStart returns the first inode-table block of group g.
func (l diskLayout) inodeTableStart(g int) int64 { return l.groupStart(g) + 1 }

// dataStart returns the first data block of group g.
func (l diskLayout) dataStart(g int) int64 {
	return l.groupStart(g) + int64(l.metaBlocks)
}

// groupOf returns the cylinder group holding ino.
func (l diskLayout) groupOf(ino layout.Ino) int {
	return int((uint32(ino) - 1) / l.sb.InodesPerGroup)
}

// slotOf returns ino's slot within its group's inode table.
func (l diskLayout) slotOf(ino layout.Ino) int {
	return int((uint32(ino) - 1) % l.sb.InodesPerGroup)
}

// inoFor returns the inode number of (group, slot).
func (l diskLayout) inoFor(g, slot int) layout.Ino {
	return layout.Ino(uint32(g)*l.sb.InodesPerGroup + uint32(slot) + 1)
}

// inodeBlock returns the physical block holding ino's record.
func (l diskLayout) inodeBlock(ino layout.Ino) int64 {
	g := l.groupOf(ino)
	return l.inodeTableStart(g) + int64(l.slotOf(ino)/l.inodesPerBlock)
}

// inodeOffsetInBlock returns ino's byte offset within its block.
func (l diskLayout) inodeOffsetInBlock(ino layout.Ino) int {
	return (l.slotOf(ino) % l.inodesPerBlock) * inodeSlotSize
}

// maxIno returns the largest valid inode number.
func (l diskLayout) maxIno() layout.Ino {
	return layout.Ino(l.sb.Groups * l.sb.InodesPerGroup)
}

// validIno reports whether ino is in range.
func (l diskLayout) validIno(ino layout.Ino) bool {
	return ino >= 1 && ino <= l.maxIno()
}

// blockToGroup returns the group containing physical block pb, or -1
// for the superblock.
func (l diskLayout) blockToGroup(pb int64) int {
	if pb < 1 {
		return -1
	}
	return int((pb - 1) / int64(l.sb.BlocksPerGroup))
}

// sectorOf converts a physical block number to its first sector.
func (l diskLayout) sectorOf(pb int64) int64 { return pb * l.sectorsPerBlock }

// addrOf converts a physical block number to an inode DiskAddr
// (sector address).
func (l diskLayout) addrOf(pb int64) layout.DiskAddr {
	return layout.DiskAddr(pb * l.sectorsPerBlock)
}

// blockOf converts an inode DiskAddr back to a physical block number.
func (l diskLayout) blockOf(a layout.DiskAddr) int64 {
	return int64(a) / l.sectorsPerBlock
}

// setBit sets bit i of the bitmap.
func setBit(bm []byte, i int) { bm[i/8] |= 1 << (i % 8) }

// clearBit clears bit i of the bitmap.
func clearBit(bm []byte, i int) { bm[i/8] &^= 1 << (i % 8) }

// testBit reports bit i of the bitmap.
func testBit(bm []byte, i int) bool { return bm[i/8]&(1<<(i%8)) != 0 }
