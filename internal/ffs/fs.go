package ffs

import (
	"fmt"
	"sync"

	"lfs/internal/cache"
	"lfs/internal/disk"
	"lfs/internal/layout"
	"lfs/internal/obs"
	"lfs/internal/sim"
	"lfs/internal/vfs"
)

// FS is a mounted FFS instance implementing vfs.FileSystem. It is
// safe for concurrent use: a single mutex serialises all operations
// on the shared simulated clock.
type FS struct {
	// mu serialises all operations; the mutable fields below are
	// guarded by it (enforced by lfslint's lockcheck pass: exported
	// methods lock, unexported helpers run with the lock held). The
	// handles d..lay are set at mount and immutable thereafter.
	mu    sync.Mutex
	d     *disk.Disk
	cfg   Config
	clock *sim.Clock
	cpu   *sim.CPU
	bc    *cache.Cache
	sb    superblock
	lay   diskLayout

	// freeBlocks and freeInodes track per-group free counts,
	// rebuilt from the bitmaps at mount. Guarded by mu.
	freeBlocks []int
	freeInodes []int
	// nextDirGroup rotates new directories across groups, FFS's
	// directory-spreading policy. Guarded by mu.
	nextDirGroup int
	// atimes holds in-core access times (classic UNIX updates atime
	// lazily; we keep it in memory and lose it on crash, which the
	// paper's workloads never observe). Guarded by mu.
	atimes map[layout.Ino]sim.Time
	// names is the directory name cache (the namei cache), and
	// insertHint the per-directory first-block-with-room hint.
	// Guarded by mu.
	names      map[layout.Ino]map[string]nameEntry
	insertHint map[layout.Ino]int64
	// lastRead tracks each file's last-read block for sequential
	// read-ahead detection. Guarded by mu.
	lastRead map[layout.Ino]int64

	// unmounted is the lifecycle flag; guarded by mu.
	unmounted bool

	// rec is the attached trace recorder (cfg.Trace); nil when
	// tracing is disabled.
	rec *obs.Recorder

	// client labels spans and disk events with the issuing client's
	// ID in multi-client runs (0 = unattributed). Guarded by mu.
	client int

	// phases accumulates the current operation's latency phases
	// (queue wait, disk service by cause, commit wait); opStart
	// resets it and endOp closes it against the span. Guarded by mu.
	phases obs.PhaseAccum
	// pendingWait holds waits noted between operations (the server's
	// dispatch gaps); the next opStart folds them into the span and
	// backdates its start. Guarded by mu.
	pendingWait [obs.NumPhaseKinds]sim.Duration
}

// diskWaiter feeds the disk's blocking-request decomposition into the
// current operation's phase accumulator. The disk invokes it from
// ReadSectors/WriteSectors, which only run with fs.mu held, so the
// unexported adapter reads guarded state directly (the lockcheck
// exemption for unexported types).
type diskWaiter struct{ fs *FS }

func (w diskWaiter) DiskWait(cause disk.IOCause, queue, service sim.Duration) {
	w.fs.phases.Add(obs.PhaseQueueWait, queue)
	w.fs.phases.AddService(cause, service)
}

// NoteWait credits d of kind to the next operation's span: the caller
// (the multi-client event loop) observed the wait before the operation
// could start, so opStart backdates the span by it. Pure bookkeeping —
// the simulated timeline is unchanged.
func (fs *FS) NoteWait(kind obs.PhaseKind, d sim.Duration) {
	if d <= 0 || kind >= obs.NumPhaseKinds {
		return
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.pendingWait[kind] += d
}

// Mount opens a formatted FFS on the disk.
func Mount(d *disk.Disk, cfg Config) (*FS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Attach the trace recorder before the first read so mount-time
	// I/O is traced; the nil guard avoids storing a typed-nil
	// *obs.Recorder in the disk.Tracer interface.
	if cfg.Trace != nil {
		d.SetTracer(cfg.Trace)
	}
	buf := make([]byte, cfg.BlockSize)
	if err := d.ReadSectors(0, buf, disk.CauseRecovery, "mount: superblock"); err != nil {
		return nil, err
	}
	sb, err := decodeSuperblock(buf)
	if err != nil {
		return nil, err
	}
	if sb.BlockSize != uint32(cfg.BlockSize) {
		return nil, fmt.Errorf("ffs: superblock block size %d != config %d", sb.BlockSize, cfg.BlockSize)
	}
	fs := &FS{
		d:          d,
		cfg:        cfg,
		clock:      d.Clock(),
		cpu:        sim.NewCPU(cfg.MIPS, d.Clock()),
		bc:         cache.New(cfg.CacheBlocks, cfg.BlockSize),
		sb:         sb,
		lay:        newLayout(sb),
		atimes:     make(map[layout.Ino]sim.Time),
		names:      make(map[layout.Ino]map[string]nameEntry),
		insertHint: make(map[layout.Ino]int64),
		lastRead:   make(map[layout.Ino]int64),
		rec:        cfg.Trace,
	}
	// Route blocking-request waits into the phase accumulator. Pure
	// arithmetic on durations the disk already computed — attaching
	// the waiter never perturbs the timeline.
	d.SetWaiter(diskWaiter{fs})
	// Rebuild free counts from the bitmaps.
	fs.freeBlocks = make([]int, sb.Groups)
	fs.freeInodes = make([]int, sb.Groups)
	for g := 0; g < int(sb.Groups); g++ {
		bm, err := fs.getBlock(fs.lay.bitmapBlock(g), true, "mount: bitmap")
		if err != nil {
			return nil, err
		}
		for b := 0; b < int(sb.BlocksPerGroup); b++ {
			if !testBit(bm.Data, b) {
				fs.freeBlocks[g]++
			}
		}
		for i := 0; i < int(sb.InodesPerGroup); i++ {
			if !testBit(bm.Data[fs.lay.inodeBitmapOff:], i) {
				fs.freeInodes[g]++
			}
		}
	}
	return fs, nil
}

// Disk returns the underlying device, for experiment instrumentation.
func (fs *FS) Disk() *disk.Disk { return fs.d }

// SetClient labels subsequent operations (their spans and the disk
// events they cause) with the issuing client's ID; the multi-client
// server sets it before each operation it dispatches. Zero restores
// unattributed traffic.
func (fs *FS) SetClient(id int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.client = id
	fs.d.SetClient(id)
}

// Clock returns the simulated clock.
func (fs *FS) Clock() *sim.Clock { return fs.clock }

// CacheStats returns buffer cache statistics.
func (fs *FS) CacheStats() cache.Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.bc.Stats()
}

// StatsSnapshot is a consistent copy of the baseline's statistics
// surfaces, taken atomically under the FS lock.
type StatsSnapshot struct {
	// Time is the simulated time of the snapshot.
	Time sim.Time
	// Disk holds the device counters, including the busy-time
	// decomposition by I/O cause.
	Disk disk.Stats
	// Cache holds the buffer cache counters.
	Cache cache.Stats
	// CPUInstructions is the total simulated instructions charged.
	CPUInstructions int64
	// FreeSpace is the free data bytes.
	FreeSpace int64
	// Trace is the aggregated trace when a recorder is attached, nil
	// otherwise.
	Trace *obs.Aggregates
}

// StatsSnapshot atomically captures all statistics surfaces.
func (fs *FS) StatsSnapshot() StatsSnapshot {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var free int64
	for _, n := range fs.freeBlocks {
		free += int64(n)
	}
	return StatsSnapshot{
		Time:            fs.clock.Now(),
		Disk:            fs.d.Stats(),
		Cache:           fs.bc.Stats(),
		CPUInstructions: fs.cpu.Instructions(),
		FreeSpace:       free * int64(fs.cfg.BlockSize),
		Trace:           fs.rec.Aggregates(),
	}
}

// DropCaches evicts all clean blocks, the paper's between-phase
// "flush the file cache" step.
func (fs *FS) DropCaches() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.bc.DropClean()
}

// Crash simulates a machine crash: the buffer cache (with all its
// dirty blocks) vanishes and the file system detaches. The disk keeps
// only what was actually written.
func (fs *FS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.bc.Clear()
	fs.unmounted = true
}

// blockKey returns the cache key of a physical block.
func blockKey(pb int64) cache.Key {
	return cache.Key{Kind: cache.KindMeta, Off: pb}
}

// getBlock returns the cached copy of physical block pb, reading it
// from disk when absent and load is true; with load false the block is
// assumed newly allocated and is returned zeroed.
func (fs *FS) getBlock(pb int64, load bool, label string) (*cache.Block, error) {
	if b := fs.bc.Get(blockKey(pb)); b != nil {
		fs.cpu.Charge(fs.cfg.Costs.BlockSetup)
		return b, nil
	}
	b := fs.bc.Add(blockKey(pb))
	fs.cpu.Charge(fs.cfg.Costs.BlockSetup)
	if load {
		fs.cpu.Charge(fs.cfg.Costs.DiskOpSetup)
		if err := fs.d.ReadSectors(fs.lay.sectorOf(pb), b.Data, disk.CauseReadMiss, label); err != nil {
			fs.bc.Remove(blockKey(pb))
			return nil, err
		}
	}
	return b, nil
}

// dirty marks a cached block modified at the current time.
func (fs *FS) dirty(b *cache.Block) {
	fs.bc.MarkDirty(b, fs.clock.Now())
}

// writeBlockSync forces the cached block to disk immediately with a
// blocking write — FFS's synchronous metadata update.
func (fs *FS) writeBlockSync(b *cache.Block, label string) error {
	fs.cpu.Charge(fs.cfg.Costs.DiskOpSetup)
	pb := b.Key.Off
	if err := fs.d.WriteSectors(fs.lay.sectorOf(pb), b.Data, true, disk.CauseSyncWrite, label); err != nil {
		return err
	}
	fs.bc.MarkClean(b)
	return nil
}

// writeback flushes dirty blocks: all of them when all is true,
// otherwise only those older than the write-back age. Blocks go out
// in dirtied (age) order, the behaviour of the era's update daemon;
// runs of adjacent blocks — which sequential writers produce
// naturally — coalesce into single transfers, but random writers pay
// a random seek per block, exactly the update-in-place cost Figure 4
// charges SunOS with. Writes are asynchronous; Sync drains afterwards.
func (fs *FS) writeback(all bool) error {
	now := fs.clock.Now()
	var victims []*cache.Block
	for _, b := range fs.bc.DirtyBlocks() {
		if all || now.Sub(b.DirtiedAt()) >= fs.cfg.WritebackAge {
			victims = append(victims, b)
		}
	}
	if len(victims) == 0 {
		return nil
	}
	run := make([]byte, 0, fs.cfg.BlockSize*8)
	runStart := int64(-1)
	var runBlocks []*cache.Block
	flushRun := func() error {
		if len(runBlocks) == 0 {
			return nil
		}
		fs.cpu.Charge(fs.cfg.Costs.DiskOpSetup)
		if err := fs.d.WriteSectors(fs.lay.sectorOf(runStart), run, false, disk.CauseWriteback, "writeback"); err != nil {
			return err
		}
		for _, b := range runBlocks {
			fs.bc.MarkClean(b)
		}
		run = run[:0]
		runBlocks = runBlocks[:0]
		runStart = -1
		return nil
	}
	for _, b := range victims {
		pb := b.Key.Off
		if runStart >= 0 && pb != runStart+int64(len(runBlocks)) {
			if err := flushRun(); err != nil {
				return err
			}
		}
		if runStart < 0 {
			runStart = pb
		}
		run = append(run, b.Data...)
		runBlocks = append(runBlocks, b)
	}
	return flushRun()
}

// maybeWriteback is the per-operation epilogue implementing the two
// background triggers: cache full and write-back age.
func (fs *FS) maybeWriteback() error {
	// Flush below full capacity so hot clean blocks (directories,
	// inode table blocks) are not forced out right before the
	// write-back frees the cache anyway.
	if fs.bc.AboveDirtyWatermark(0.90) || fs.bc.Overfull() {
		return fs.writeback(true)
	}
	if oldest, ok := fs.bc.OldestDirty(); ok {
		if fs.clock.Now().Sub(oldest) >= fs.cfg.WritebackAge {
			return fs.writeback(false)
		}
	}
	return nil
}

// --- inode access -----------------------------------------------------

// readInode fetches ino's record through the buffer cache.
func (fs *FS) readInode(ino layout.Ino) (layout.Inode, error) {
	if !fs.lay.validIno(ino) {
		return layout.Inode{}, fmt.Errorf("%w: inode %d out of range", vfs.ErrInvalid, ino)
	}
	b, err := fs.getBlock(fs.lay.inodeBlock(ino), true, "inode read")
	if err != nil {
		return layout.Inode{}, err
	}
	off := fs.lay.inodeOffsetInBlock(ino)
	raw := b.Data[off : off+inodeSlotSize]
	allZero := true
	for _, x := range raw {
		if x != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return layout.Inode{}, nil // free slot
	}
	in, err := layout.DecodeInode(raw)
	if err != nil {
		return layout.Inode{}, fmt.Errorf("ffs: inode %d: %w", ino, err)
	}
	return in, nil
}

// writeInode stores ino's record; with sync true the containing table
// block is written to disk immediately (the creat/unlink path).
func (fs *FS) writeInode(in *layout.Inode, sync bool, label string) error {
	b, err := fs.getBlock(fs.lay.inodeBlock(in.Ino), true, "inode write")
	if err != nil {
		return err
	}
	in.Encode(b.Data[fs.lay.inodeOffsetInBlock(in.Ino):])
	if sync {
		return fs.writeBlockSync(b, label)
	}
	fs.dirty(b)
	return nil
}

// clearInode zeroes ino's record (freeing the slot).
func (fs *FS) clearInode(ino layout.Ino, sync bool, label string) error {
	b, err := fs.getBlock(fs.lay.inodeBlock(ino), true, "inode clear")
	if err != nil {
		return err
	}
	off := fs.lay.inodeOffsetInBlock(ino)
	for i := 0; i < inodeSlotSize; i++ {
		b.Data[off+i] = 0
	}
	if sync {
		return fs.writeBlockSync(b, label)
	}
	fs.dirty(b)
	return nil
}

// --- allocation -------------------------------------------------------

// allocInode allocates an inode, preferring the given group (the
// parent directory's group for files; a rotating group for new
// directories).
func (fs *FS) allocInode(prefGroup int, isDir bool) (layout.Ino, error) {
	groups := int(fs.sb.Groups)
	for i := 0; i < groups; i++ {
		g := (prefGroup + i) % groups
		if fs.freeInodes[g] == 0 {
			continue
		}
		bm, err := fs.getBlock(fs.lay.bitmapBlock(g), true, "bitmap")
		if err != nil {
			return 0, err
		}
		ibm := bm.Data[fs.lay.inodeBitmapOff:]
		for s := 0; s < int(fs.sb.InodesPerGroup); s++ {
			if !testBit(ibm, s) {
				setBit(ibm, s)
				fs.dirty(bm)
				fs.freeInodes[g]--
				if isDir {
					fs.nextDirGroup = (g + 1) % groups
				}
				return fs.lay.inoFor(g, s), nil
			}
		}
	}
	return 0, fmt.Errorf("%w: no free inodes", vfs.ErrNoSpace)
}

// freeInode releases an inode slot.
func (fs *FS) freeInode(ino layout.Ino) error {
	g := fs.lay.groupOf(ino)
	bm, err := fs.getBlock(fs.lay.bitmapBlock(g), true, "bitmap")
	if err != nil {
		return err
	}
	clearBit(bm.Data[fs.lay.inodeBitmapOff:], fs.lay.slotOf(ino))
	fs.dirty(bm)
	fs.freeInodes[g]++
	delete(fs.atimes, ino)
	return nil
}

// allocBlock allocates a data (or indirect) block, preferring the
// given group. It returns the physical block number.
func (fs *FS) allocBlock(prefGroup int) (int64, error) {
	groups := int(fs.sb.Groups)
	for i := 0; i < groups; i++ {
		g := (prefGroup + i) % groups
		if fs.freeBlocks[g] == 0 {
			continue
		}
		bm, err := fs.getBlock(fs.lay.bitmapBlock(g), true, "bitmap")
		if err != nil {
			return 0, err
		}
		for b := fs.lay.metaBlocks; b < int(fs.sb.BlocksPerGroup); b++ {
			if !testBit(bm.Data, b) {
				setBit(bm.Data, b)
				fs.dirty(bm)
				fs.freeBlocks[g]--
				return fs.lay.groupStart(g) + int64(b), nil
			}
		}
	}
	return 0, fmt.Errorf("%w: no free blocks", vfs.ErrNoSpace)
}

// freeBlock releases a physical block and drops any cached copy.
func (fs *FS) freeBlock(pb int64) error {
	g := fs.lay.blockToGroup(pb)
	if g < 0 || g >= int(fs.sb.Groups) {
		return fmt.Errorf("ffs: freeing block %d outside any group", pb)
	}
	bm, err := fs.getBlock(fs.lay.bitmapBlock(g), true, "bitmap")
	if err != nil {
		return err
	}
	idx := int(pb - fs.lay.groupStart(g))
	if !testBit(bm.Data, idx) {
		return fmt.Errorf("ffs: double free of block %d", pb)
	}
	clearBit(bm.Data, idx)
	fs.dirty(bm)
	fs.freeBlocks[g]++
	fs.bc.Remove(blockKey(pb))
	return nil
}

// FreeSpace returns the total free data bytes.
func (fs *FS) FreeSpace() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var blocks int64
	for _, n := range fs.freeBlocks {
		blocks += int64(n)
	}
	return blocks * int64(fs.cfg.BlockSize)
}
