package ffs_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"lfs/internal/disk"
	"lfs/internal/ffs"
	"lfs/internal/fstest"
	"lfs/internal/sim"
	"lfs/internal/vfs"
)

// newFS formats and mounts an FFS on a fresh memory disk.
func newFS(t *testing.T, capacity int64) *ffs.FS {
	t.Helper()
	d := disk.NewMem(capacity, sim.NewClock())
	cfg := ffs.DefaultConfig()
	if err := ffs.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := ffs.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestFFSConformance(t *testing.T) {
	fstest.RunConformance(t, func(t *testing.T) vfs.FileSystem {
		return newFS(t, 64<<20)
	})
}

func TestFFSModelEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fstest.RunEquivalence(t, func(t *testing.T) vfs.FileSystem {
				return newFS(t, 64<<20)
			}, seed, 400)
		})
	}
}

func TestFFSDurabilityEquivalence(t *testing.T) {
	for seed := int64(20); seed <= 22; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := ffs.DefaultConfig()
			fstest.RunDurabilityEquivalence(t, func(t *testing.T) (vfs.FileSystem, func() vfs.FileSystem) {
				d := disk.NewMem(64<<20, sim.NewClock())
				if err := ffs.Format(d, cfg); err != nil {
					t.Fatal(err)
				}
				fs, err := ffs.Mount(d, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return fs, func() vfs.FileSystem {
					fs2, err := ffs.Mount(d, cfg)
					if err != nil {
						t.Fatalf("remount: %v", err)
					}
					return fs2
				}
			}, seed, 300)
		})
	}
}

func TestFormatValidation(t *testing.T) {
	d := disk.NewMem(8<<20, sim.NewClock())
	bad := ffs.DefaultConfig()
	bad.BlockSize = 1000
	if err := ffs.Format(d, bad); err == nil {
		t.Fatal("bad block size accepted")
	}
	tiny := disk.NewMem(1<<20, sim.NewClock())
	if err := ffs.Format(tiny, ffs.DefaultConfig()); err == nil {
		t.Fatal("disk smaller than one group accepted")
	}
}

func TestMountRejectsUnformattedDisk(t *testing.T) {
	d := disk.NewMem(16<<20, sim.NewClock())
	if _, err := ffs.Mount(d, ffs.DefaultConfig()); err == nil {
		t.Fatal("mounted an unformatted disk")
	}
}

func TestMountRejectsMismatchedBlockSize(t *testing.T) {
	d := disk.NewMem(16<<20, sim.NewClock())
	cfg := ffs.DefaultConfig()
	if err := ffs.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.BlockSize = 4096
	cfg.BlocksPerGroup = 512
	if _, err := ffs.Mount(d, cfg); err == nil {
		t.Fatal("mounted with the wrong block size")
	}
}

// countSync counts synchronous writes recorded by the tracer.
type syncCounter struct {
	syncWrites  int
	totalWrites int
	events      []disk.Event
}

func (c *syncCounter) Record(ev disk.Event) {
	if ev.Kind == disk.OpWrite {
		c.totalWrites++
		if ev.Sync {
			c.syncWrites++
		}
	}
	c.events = append(c.events, ev)
}

// TestCreateIsSynchronous verifies the baseline's defining behaviour:
// each small-file creation performs synchronous disk writes (the inode
// and the directory block), which is what Figure 1 of the paper shows.
func TestCreateIsSynchronous(t *testing.T) {
	fs := newFS(t, 64<<20)
	if err := fs.Mkdir("/dir1"); err != nil {
		t.Fatal(err)
	}
	var c syncCounter
	fs.Disk().SetTracer(&c)
	before := fs.Clock().Now()
	if err := fs.Create("/dir1/file1"); err != nil {
		t.Fatal(err)
	}
	if c.syncWrites < 2 {
		t.Fatalf("creat performed %d sync writes, want >= 2 (inode + dir data)", c.syncWrites)
	}
	// The caller's clock advanced by at least two random-write
	// latencies: creation speed is coupled to disk latency.
	elapsed := fs.Clock().Now().Sub(before)
	if elapsed < 20*sim.Millisecond {
		t.Fatalf("creat took %v of simulated time, want >= 20ms (synchronous random writes)", elapsed)
	}
}

func TestUnlinkIsSynchronous(t *testing.T) {
	fs := newFS(t, 64<<20)
	if err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	var c syncCounter
	fs.Disk().SetTracer(&c)
	if err := fs.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if c.syncWrites < 2 {
		t.Fatalf("unlink performed %d sync writes, want >= 2", c.syncWrites)
	}
}

// TestDataWritesAreDelayed verifies that file data is not written at
// write() time but by the delayed write-back.
func TestDataWritesAreDelayed(t *testing.T) {
	fs := newFS(t, 64<<20)
	if err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	var c syncCounter
	fs.Disk().SetTracer(&c)
	if err := fs.Write("/f", 0, bytes.Repeat([]byte{1}, 8192)); err != nil {
		t.Fatal(err)
	}
	if c.totalWrites != 0 {
		t.Fatalf("write() issued %d disk writes, want 0 (delayed write-back)", c.totalWrites)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if c.totalWrites == 0 {
		t.Fatal("sync issued no writes")
	}
}

func TestDataPersistsAcrossRemount(t *testing.T) {
	d := disk.NewMem(64<<20, sim.NewClock())
	cfg := ffs.DefaultConfig()
	if err := ffs.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := ffs.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xC3}, 20000)
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/d/f", 0, want); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}

	fs2, err := ffs.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	n, err := fs2.Read("/d/f", 0, got)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) || !bytes.Equal(got, want) {
		t.Fatal("data lost across remount")
	}
}

// TestCrashLosesOnlyUnsyncedData: after a crash, synchronously written
// metadata survives (the file exists) but unsynced data is gone.
func TestCrashLosesOnlyUnsyncedData(t *testing.T) {
	d := disk.NewMem(64<<20, sim.NewClock())
	cfg := ffs.DefaultConfig()
	if err := ffs.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := ffs.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/synced"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/synced", 0, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/unsynced"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/unsynced", 0, []byte("volatile")); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	fs2, err := ffs.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := fs2.Read("/synced", 0, buf)
	if err != nil || string(buf[:n]) != "durable" {
		t.Fatalf("synced file damaged: %q, %v", buf[:n], err)
	}
	// The unsynced file's creation was synchronous, so the name
	// survives — but its data was only in the cache.
	fi, err := fs2.Stat("/unsynced")
	if err != nil {
		t.Fatalf("unsynced file name lost: %v", err)
	}
	if fi.Size != 0 {
		n, _ := fs2.Read("/unsynced", 0, buf)
		if string(buf[:n]) == "volatile" {
			t.Fatal("unsynced data unexpectedly survived the crash")
		}
	}
}

func TestFsckCleanFilesystem(t *testing.T) {
	d := disk.NewMem(64<<20, sim.NewClock())
	cfg := ffs.DefaultConfig()
	if err := ffs.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := ffs.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p := fmt.Sprintf("/d/f%d", i)
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(p, 0, bytes.Repeat([]byte{byte(i)}, 10000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	rep, err := ffs.Fsck(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) != 0 {
		t.Fatalf("fsck found problems on a clean fs: %v", rep.Problems)
	}
	if rep.FilesFound != 22 { // root + /d + 20 files
		t.Fatalf("fsck found %d files, want 22", rep.FilesFound)
	}
	if rep.Duration <= 0 {
		t.Fatal("fsck took no simulated time")
	}
}

// TestFsckCostScalesWithDiskSize: the recovery-cost property LFS
// attacks — fsck reads all metadata regardless of damage.
func TestFsckCostScalesWithDiskSize(t *testing.T) {
	durationFor := func(capacity int64) sim.Duration {
		d := disk.NewMem(capacity, sim.NewClock())
		cfg := ffs.DefaultConfig()
		if err := ffs.Format(d, cfg); err != nil {
			t.Fatal(err)
		}
		rep, err := ffs.Fsck(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Duration
	}
	small := durationFor(16 << 20)
	large := durationFor(128 << 20)
	if ratio := float64(large) / float64(small); ratio < 3 {
		t.Fatalf("fsck on 8x disk only %.1fx slower; cost should scale with disk size", ratio)
	}
}

func TestFreeSpaceDecreasesAndRecovers(t *testing.T) {
	fs := newFS(t, 32<<20)
	// Warm the root directory's data block so it doesn't count as
	// "lost" space below (directories never shrink).
	if err := fs.Create("/warm"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/warm"); err != nil {
		t.Fatal(err)
	}
	before := fs.FreeSpace()
	if err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/f", 0, make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	mid := fs.FreeSpace()
	if mid >= before {
		t.Fatal("free space did not decrease after 1MB write")
	}
	if err := fs.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	after := fs.FreeSpace()
	if after != before {
		t.Fatalf("free space %d after remove, want %d", after, before)
	}
}

func TestNoSpace(t *testing.T) {
	// A minimal disk: fill it and expect ErrNoSpace, not corruption.
	d := disk.NewMem(4<<20, sim.NewClock())
	cfg := ffs.DefaultConfig()
	cfg.CacheBlocks = 64
	if err := ffs.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := ffs.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/hog"); err != nil {
		t.Fatal(err)
	}
	var wErr error
	for i := 0; i < 4096; i++ {
		wErr = fs.Write("/hog", int64(i)<<13, make([]byte, 8192))
		if wErr != nil {
			break
		}
	}
	if !errors.Is(wErr, vfs.ErrNoSpace) {
		t.Fatalf("filling the disk returned %v, want ErrNoSpace", wErr)
	}
}

func TestInodeExhaustion(t *testing.T) {
	// One group => InodesPerGroup inodes (minus root). Exhaust them.
	d := disk.NewMem(4<<20, sim.NewClock())
	cfg := ffs.DefaultConfig()
	cfg.InodesPerGroup = 16
	if err := ffs.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := ffs.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var cErr error
	for i := 0; i < 64; i++ {
		cErr = fs.Create(fmt.Sprintf("/f%d", i))
		if cErr != nil {
			break
		}
	}
	if !errors.Is(cErr, vfs.ErrNoSpace) {
		t.Fatalf("inode exhaustion returned %v, want ErrNoSpace", cErr)
	}
}

func TestDropCaches(t *testing.T) {
	fs := newFS(t, 32<<20)
	if err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/f", 0, make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.DropCaches()
	// Reads now must hit the disk.
	before := fs.Disk().Stats().Reads
	buf := make([]byte, 64<<10)
	if _, err := fs.Read("/f", 0, buf); err != nil {
		t.Fatal(err)
	}
	if fs.Disk().Stats().Reads == before {
		t.Fatal("read after DropCaches hit no disk")
	}
}

func TestAtimeUpdatedOnRead(t *testing.T) {
	fs := newFS(t, 32<<20)
	if err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/f", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	fi1, _ := fs.Stat("/f")
	if _, err := fs.Read("/f", 0, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	fi2, _ := fs.Stat("/f")
	if fi2.Atime < fi1.Atime {
		t.Fatal("atime went backwards")
	}
	if fi2.Mtime != fi1.Mtime {
		t.Fatal("read changed mtime")
	}
}

// TestFsckDetectsCorruption: fsck must report manufactured damage,
// not just bless clean volumes.
func TestFsckDetectsCorruption(t *testing.T) {
	d := disk.NewMem(32<<20, sim.NewClock())
	cfg := ffs.DefaultConfig()
	if err := ffs.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := ffs.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/f", 0, bytes.Repeat([]byte{1}, 30000)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	// Damage the volume behind the file system's back: zero the
	// first group's bitmap block, so every allocated block appears
	// free.
	bs := cfg.BlockSize
	zero := make([]byte, bs)
	// Group 0 bitmap lives at block 1.
	if err := d.Store().WriteAt(zero, int64(bs)); err != nil {
		t.Fatal(err)
	}
	rep, err := ffs.Fsck(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) == 0 {
		t.Fatal("fsck blessed a volume with a zeroed bitmap")
	}
}

// TestFsckProblemsDeterministicOrder is the regression test for the
// lfslint maporder finding fixed in fsck's Pass 3: per-inode problems
// used to be emitted in map iteration order, so the report — which
// lfsck prints and tests golden — differed between identical runs.
// With many damaged inodes, the Pass 3 lines must come out in
// ascending inode order every time.
func TestFsckProblemsDeterministicOrder(t *testing.T) {
	d := disk.NewMem(32<<20, sim.NewClock())
	cfg := ffs.DefaultConfig()
	if err := ffs.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := ffs.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		p := fmt.Sprintf("/f%02d", i)
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(p, 0, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	// Zero group 0's bitmap: every allocated inode now reads as free,
	// so Pass 3 reports one problem per inode.
	zero := make([]byte, cfg.BlockSize)
	if err := d.Store().WriteAt(zero, int64(cfg.BlockSize)); err != nil {
		t.Fatal(err)
	}
	rep, err := ffs.Fsck(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	last, seen := -1, 0
	for _, p := range rep.Problems {
		var ino int
		if _, err := fmt.Sscanf(p, "inode %d in use but free in bitmap", &ino); err != nil {
			continue
		}
		seen++
		if ino <= last {
			t.Fatalf("bitmap problems out of ascending inode order: %d after %d\n%v",
				ino, last, rep.Problems)
		}
		last = ino
	}
	if seen < 25 {
		t.Fatalf("only %d per-inode bitmap problems reported, want at least 25", seen)
	}
}

// TestDoubleIndirectLifecycle exercises FFS's double-indirect paths:
// sparse writes land blocks in the double-indirect region, reads find
// them (and holes around them), and truncation releases the whole
// pointer tree.
func TestDoubleIndirectLifecycle(t *testing.T) {
	fs := newFS(t, 64<<20)
	if err := fs.Create("/sparse"); err != nil {
		t.Fatal(err)
	}
	bs := int64(8192)
	// Block offsets: one direct, one single-indirect, several
	// double-indirect (including two different outer slots).
	apb := int64(8192 / 4)
	offsets := []int64{
		0,                           // direct
		(12 + 5) * bs,               // single indirect
		(12 + apb + 3) * bs,         // double indirect, outer 0
		(12 + apb + apb + 7) * bs,   // double indirect, outer 1
		(12 + apb + 2*apb + 1) * bs, // double indirect, outer 2
	}
	for i, off := range offsets {
		data := bytes.Repeat([]byte{byte(i + 1)}, 8192)
		if err := fs.Write("/sparse", off, data); err != nil {
			t.Fatalf("write at %d: %v", off, err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.DropCaches()
	buf := make([]byte, 8192)
	for i, off := range offsets {
		n, err := fs.Read("/sparse", off, buf)
		if err != nil || n != 8192 {
			t.Fatalf("read at %d: n=%d err=%v", off, n, err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("block at %d reads %d, want %d", off, buf[0], i+1)
		}
	}
	// A hole between two double-indirect blocks reads zero.
	n, err := fs.Read("/sparse", (12+apb+10)*bs, buf)
	if err != nil || n != 8192 {
		t.Fatalf("hole read: n=%d err=%v", n, err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
	// Partial truncation keeps outer slot 0, releases slots 1-2.
	keep := (12 + apb + apb) * bs // everything below outer slot 1
	if err := fs.Truncate("/sparse", keep); err != nil {
		t.Fatal(err)
	}
	n, err = fs.Read("/sparse", offsets[2], buf)
	if err != nil || n != 8192 || buf[0] != 3 {
		t.Fatalf("outer-0 block lost by partial truncate: n=%d err=%v b=%d", n, err, buf[0])
	}
	// Full release: all blocks (and indirect blocks) come back as
	// free space.
	before := fs.FreeSpace()
	if err := fs.Remove("/sparse"); err != nil {
		t.Fatal(err)
	}
	if fs.FreeSpace() <= before {
		t.Fatal("remove of sparse file freed nothing")
	}
	// The volume stays consistent.
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	rep, err := ffs.Fsck(fs.Disk(), ffs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) != 0 {
		t.Fatalf("fsck after double-indirect lifecycle: %v", rep.Problems)
	}
}

func TestConfigValidation(t *testing.T) {
	base := ffs.DefaultConfig()
	cases := []func(*ffs.Config){
		func(c *ffs.Config) { c.BlockSize = 0 },
		func(c *ffs.Config) { c.BlockSize = 1000 },
		func(c *ffs.Config) { c.BlocksPerGroup = 2 },
		func(c *ffs.Config) { c.InodesPerGroup = 0 },
		func(c *ffs.Config) { c.InodesPerGroup = 7 },
		func(c *ffs.Config) { c.CacheBlocks = 1 },
		func(c *ffs.Config) { c.WritebackAge = 0 },
		func(c *ffs.Config) { c.MIPS = 0 },
		func(c *ffs.Config) { c.BlocksPerGroup = 9; c.InodesPerGroup = 4096 },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}
