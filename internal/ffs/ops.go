package ffs

import (
	"fmt"

	"lfs/internal/layout"
	"lfs/internal/obs"
	"lfs/internal/sim"
	"lfs/internal/vfs"
)

// FS implements vfs.FileSystem.
var _ vfs.FileSystem = (*FS)(nil)

func (fs *FS) checkMounted() error {
	if fs.unmounted {
		return vfs.ErrUnmounted
	}
	return nil
}

// maxFileSize returns the double-indirect limit in bytes.
func (fs *FS) maxFileSize() int64 {
	return layout.MaxFileBlocks(fs.cfg.BlockSize) * int64(fs.cfg.BlockSize)
}

// opStart samples the simulated clock and CPU at operation entry and
// resets the phase accumulator. Waits noted before the operation could
// start (the event loop's dispatch gaps) are folded in and the span's
// start backdated by them — the wait really elapsed, it just elapsed
// before the operation got the floor.
func (fs *FS) opStart() (sim.Time, int64) {
	fs.phases.Reset()
	start := fs.clock.Now()
	for k := range fs.pendingWait {
		if d := fs.pendingWait[k]; d > 0 {
			fs.phases.Add(obs.PhaseKind(k), d)
			start = start.Add(-d)
			fs.pendingWait[k] = 0
		}
	}
	return start, fs.cpu.Instructions()
}

// endOp wraps err with operation and path context (*vfs.PathError)
// and, when a recorder is attached, emits the operation's span with
// its phase decomposition (the unattributed residual is CPU, so the
// phases always sum to the span's latency exactly). Must be called
// with fs.mu held.
func (fs *FS) endOp(op, path string, start sim.Time, cpu0 int64, err error) error {
	err = vfs.WrapPathError(op, path, err)
	if fs.rec != nil {
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		fs.rec.Span(obs.Span{Op: op, Path: path, Start: start,
			End: fs.clock.Now(), CPU: fs.cpu.Instructions() - cpu0, Err: msg,
			Client: fs.client,
			Phases: fs.phases.Phases(fs.clock.Now().Sub(start))})
	}
	return err
}

// createNode is the shared implementation of Create and Mkdir. It
// performs FFS's defining synchronous writes: the new inode's table
// block and the parent directory's data block go to disk before the
// call returns (Figure 1 of the paper).
func (fs *FS) createNode(path string, isDir bool) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall + fs.cfg.Costs.Create)
	dirParts, base, err := vfs.SplitDirBase(path)
	if err != nil {
		return err
	}
	parent, err := fs.resolveDir(dirParts)
	if err != nil {
		return err
	}
	if _, exists, err := fs.dirLookup(&parent, base); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("%w: %q", vfs.ErrExist, path)
	}

	prefGroup := fs.lay.groupOf(parent.Ino)
	mode := layout.ModeFile | 0o644
	if isDir {
		prefGroup = fs.nextDirGroup
		mode = layout.ModeDir | 0o755
	}
	ino, err := fs.allocInode(prefGroup, isDir)
	if err != nil {
		return err
	}
	in := layout.NewInode(ino, mode)
	if isDir {
		in.Nlink = 2
	}
	now := int64(fs.clock.Now())
	in.Mtime, in.Ctime = now, now
	// Synchronous write #1: the new inode.
	if err := fs.writeInode(&in, true, "creat: inode"); err != nil {
		return err
	}
	// Synchronous write #2: the directory data block.
	dirBlk, grew, err := fs.dirInsert(&parent, base, ino)
	if err != nil {
		return err
	}
	if err := fs.writeBlockSync(dirBlk, "creat: dir data"); err != nil {
		return err
	}
	// The parent's inode (mtime, possibly size) goes out with the
	// delayed write-back.
	parent.Mtime = now
	_ = grew
	if err := fs.writeInode(&parent, false, "creat: dir inode"); err != nil {
		return err
	}
	fs.atimes[ino] = fs.clock.Now()
	return fs.maybeWriteback()
}

// Create makes a new empty regular file.
func (fs *FS) Create(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	return fs.endOp("create", path, start, cpu0, fs.createNode(path, false))
}

// Mkdir makes a new empty directory.
func (fs *FS) Mkdir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	return fs.endOp("mkdir", path, start, cpu0, fs.createNode(path, true))
}

// lookupFile resolves path and requires a regular file.
func (fs *FS) lookupFile(path string) (layout.Inode, error) {
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return layout.Inode{}, err
	}
	in, err := fs.resolve(parts)
	if err != nil {
		return layout.Inode{}, err
	}
	if in.Mode.IsDir() {
		return layout.Inode{}, fmt.Errorf("%w: %q", vfs.ErrIsDir, path)
	}
	return in, nil
}

// Write stores data at off, growing the file as needed. Data blocks
// are dirtied in the cache and written back later — asynchronously but
// to their (random) update-in-place locations.
func (fs *FS) Write(path string, off int64, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	return fs.endOp("write", path, start, cpu0, fs.write(path, off, data))
}

// write is Write without the lock, span, or error wrapping.
func (fs *FS) write(path string, off int64, data []byte) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall)
	in, err := fs.lookupFile(path)
	if err != nil {
		return err
	}
	if off < 0 {
		return fmt.Errorf("%w: negative offset %d", vfs.ErrInvalid, off)
	}
	if end := off + int64(len(data)); end > fs.maxFileSize() {
		return fmt.Errorf("%w: %q to %d bytes", vfs.ErrTooLarge, path, end)
	}
	if _, err := fs.writeFile(&in, off, data); err != nil {
		return err
	}
	in.Mtime = int64(fs.clock.Now())
	if err := fs.writeInode(&in, false, "write: inode"); err != nil {
		return err
	}
	return fs.maybeWriteback()
}

// Read fills buf from off.
func (fs *FS) Read(path string, off int64, buf []byte) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	n, err := fs.read(path, off, buf)
	return n, fs.endOp("read", path, start, cpu0, err)
}

// read is Read without the lock, span, or error wrapping.
func (fs *FS) read(path string, off int64, buf []byte) (int, error) {
	if err := fs.checkMounted(); err != nil {
		return 0, err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall)
	in, err := fs.lookupFile(path)
	if err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset %d", vfs.ErrInvalid, off)
	}
	n, err := fs.readFile(&in, off, buf)
	if err != nil {
		return n, err
	}
	fs.atimes[in.Ino] = fs.clock.Now()
	return n, nil
}

// Stat describes the file at path.
func (fs *FS) Stat(path string) (vfs.FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	fi, err := fs.stat(path)
	return fi, fs.endOp("stat", path, start, cpu0, err)
}

// stat is Stat without the lock, span, or error wrapping.
func (fs *FS) stat(path string) (vfs.FileInfo, error) {
	if err := fs.checkMounted(); err != nil {
		return vfs.FileInfo{}, err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall)
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	in, err := fs.resolve(parts)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	fi := vfs.FileInfo{
		Ino:   in.Ino,
		Mode:  in.Mode,
		Nlink: int(in.Nlink),
		Mtime: sim.Time(in.Mtime),
		Atime: fs.atimes[in.Ino],
	}
	if !in.Mode.IsDir() {
		fi.Size = int64(in.Size)
	}
	return fi, nil
}

// ReadDir lists the directory in name order.
func (fs *FS) ReadDir(path string) ([]layout.DirEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	ents, err := fs.readDir(path)
	return ents, fs.endOp("readdir", path, start, cpu0, err)
}

// readDir is ReadDir without the lock, span, or error wrapping.
func (fs *FS) readDir(path string) ([]layout.DirEntry, error) {
	if err := fs.checkMounted(); err != nil {
		return nil, err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall)
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return nil, err
	}
	dir, err := fs.resolveDir(parts)
	if err != nil {
		return nil, err
	}
	return fs.dirEntries(&dir)
}

// Remove unlinks a file or removes an empty directory, with FFS's
// synchronous writes of the directory block and the freed inode's
// table block.
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	return fs.endOp("remove", path, start, cpu0, fs.remove(path))
}

// remove is Remove without the lock, span, or error wrapping.
func (fs *FS) remove(path string) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall + fs.cfg.Costs.Unlink)
	dirParts, base, err := vfs.SplitDirBase(path)
	if err != nil {
		return err
	}
	parent, err := fs.resolveDir(dirParts)
	if err != nil {
		return err
	}
	ino, found, err := fs.dirLookup(&parent, base)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: %q", vfs.ErrNotExist, path)
	}
	in, err := fs.readInode(ino)
	if err != nil {
		return err
	}
	if in.Mode.IsDir() {
		empty, err := fs.dirEmpty(&in)
		if err != nil {
			return err
		}
		if !empty {
			return fmt.Errorf("%w: %q", vfs.ErrNotEmpty, path)
		}
	}
	// Synchronous write #1: the directory block losing the entry.
	dirBlk, err := fs.dirRemove(&parent, base)
	if err != nil {
		return err
	}
	if in.Mode.IsDir() {
		fs.forgetDir(ino)
	}
	if err := fs.writeBlockSync(dirBlk, "unlink: dir data"); err != nil {
		return err
	}
	// With other hard links remaining, only the link count drops;
	// the storage goes when the last name does. Synchronous write
	// #2 either way: the updated or cleared inode.
	if !in.Mode.IsDir() && in.Nlink > 1 {
		in.Nlink--
		if err := fs.writeInode(&in, true, "unlink: inode"); err != nil {
			return err
		}
	} else {
		if err := fs.freeAllBlocks(&in); err != nil {
			return err
		}
		if err := fs.clearInode(ino, true, "unlink: inode"); err != nil {
			return err
		}
		if err := fs.freeInode(ino); err != nil {
			return err
		}
	}
	parent.Mtime = int64(fs.clock.Now())
	if err := fs.writeInode(&parent, false, "unlink: dir inode"); err != nil {
		return err
	}
	return fs.maybeWriteback()
}

// Link creates a second directory entry for an existing regular
// file. Like creat, BSD writes both the directory block and the
// updated inode synchronously.
func (fs *FS) Link(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	return fs.endOp("link", oldPath, start, cpu0, fs.link(oldPath, newPath))
}

// link is Link without the lock, span, or error wrapping.
func (fs *FS) link(oldPath, newPath string) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall + fs.cfg.Costs.Create)
	in, err := fs.lookupFile(oldPath) // rejects directories
	if err != nil {
		return err
	}
	newDirParts, newBase, err := vfs.SplitDirBase(newPath)
	if err != nil {
		return err
	}
	newParent, err := fs.resolveDir(newDirParts)
	if err != nil {
		return err
	}
	if _, exists, err := fs.dirLookup(&newParent, newBase); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("%w: %q", vfs.ErrExist, newPath)
	}
	dirBlk, _, err := fs.dirInsert(&newParent, newBase, in.Ino)
	if err != nil {
		return err
	}
	if err := fs.writeBlockSync(dirBlk, "link: dir data"); err != nil {
		return err
	}
	in.Nlink++
	if err := fs.writeInode(&in, true, "link: inode"); err != nil {
		return err
	}
	newParent.Mtime = int64(fs.clock.Now())
	if err := fs.writeInode(&newParent, false, "link: dir inode"); err != nil {
		return err
	}
	return fs.maybeWriteback()
}

// Rename moves oldPath to newPath.
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	return fs.endOp("rename", oldPath, start, cpu0, fs.rename(oldPath, newPath))
}

// rename is Rename without the lock, span, or error wrapping.
func (fs *FS) rename(oldPath, newPath string) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall)
	oldDirParts, oldBase, err := vfs.SplitDirBase(oldPath)
	if err != nil {
		return err
	}
	newDirParts, newBase, err := vfs.SplitDirBase(newPath)
	if err != nil {
		return err
	}
	oldParent, err := fs.resolveDir(oldDirParts)
	if err != nil {
		return err
	}
	ino, found, err := fs.dirLookup(&oldParent, oldBase)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: %q", vfs.ErrNotExist, oldPath)
	}
	in, err := fs.readInode(ino)
	if err != nil {
		return err
	}
	if in.Mode.IsDir() && len(newPath) > len(oldPath) && newPath[:len(oldPath)+1] == oldPath+"/" {
		return fmt.Errorf("%w: cannot move %q inside itself", vfs.ErrInvalid, oldPath)
	}
	newParent, err := fs.resolveDir(newDirParts)
	if err != nil {
		return err
	}
	if _, exists, err := fs.dirLookup(&newParent, newBase); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("%w: %q", vfs.ErrExist, newPath)
	}
	// Insert first, then remove, so a crash between the two leaves
	// the file reachable (possibly twice) rather than lost. Both
	// directory blocks are written synchronously, as BSD does.
	insBlk, _, err := fs.dirInsert(&newParent, newBase, ino)
	if err != nil {
		return err
	}
	if err := fs.writeBlockSync(insBlk, "rename: dir data"); err != nil {
		return err
	}
	// Re-read the old parent in case both names share blocks. When
	// the two parents are the same directory, operate on the
	// updated copy.
	if newParent.Ino == oldParent.Ino {
		oldParent = newParent
	}
	rmBlk, err := fs.dirRemove(&oldParent, oldBase)
	if err != nil {
		return err
	}
	if err := fs.writeBlockSync(rmBlk, "rename: dir data"); err != nil {
		return err
	}
	now := int64(fs.clock.Now())
	oldParent.Mtime = now
	if err := fs.writeInode(&oldParent, false, "rename: dir inode"); err != nil {
		return err
	}
	if newParent.Ino != oldParent.Ino {
		newParent.Mtime = now
		if err := fs.writeInode(&newParent, false, "rename: dir inode"); err != nil {
			return err
		}
	}
	return fs.maybeWriteback()
}

// Truncate sets the file length.
func (fs *FS) Truncate(path string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	return fs.endOp("truncate", path, start, cpu0, fs.truncate(path, size))
}

// truncate is Truncate without the lock, span, or error wrapping.
func (fs *FS) truncate(path string, size int64) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall)
	in, err := fs.lookupFile(path)
	if err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("%w: negative size %d", vfs.ErrInvalid, size)
	}
	if size > fs.maxFileSize() {
		return fmt.Errorf("%w: %q to %d bytes", vfs.ErrTooLarge, path, size)
	}
	if err := fs.truncateFile(&in, size); err != nil {
		return err
	}
	in.Mtime = int64(fs.clock.Now())
	if err := fs.writeInode(&in, false, "truncate: inode"); err != nil {
		return err
	}
	return fs.maybeWriteback()
}

// Sync writes all dirty cached blocks to disk and waits for them.
func (fs *FS) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	return fs.endOp("sync", "/", start, cpu0, fs.sync())
}

// sync is Sync without the lock, span, or error wrapping.
func (fs *FS) sync() error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall)
	if err := fs.writeback(true); err != nil {
		return err
	}
	// Waiting out the queued write-back transfers is commit wait.
	t0 := fs.clock.Now()
	fs.d.Drain()
	fs.phases.Add(obs.PhaseCommitWait, fs.clock.Now().Sub(t0))
	return nil
}

// Unmount syncs and detaches the file system.
func (fs *FS) Unmount() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	return fs.endOp("unmount", "/", start, cpu0, fs.unmount())
}

// unmount is Unmount without the lock, span, or error wrapping.
func (fs *FS) unmount() error {
	if err := fs.sync(); err != nil {
		return err
	}
	fs.unmounted = true
	return nil
}
