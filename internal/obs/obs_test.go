package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"lfs/internal/disk"
	"lfs/internal/sim"
)

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 0.9, 1, 5, 50, 100, 1e6} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, c, want[i], h.Counts)
		}
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(1, 10)
	if got := h.String(); got != "(empty)" {
		t.Errorf("empty String = %q", got)
	}
	h.Observe(0.5)
	h.Observe(11)
	s := h.String()
	if !strings.Contains(s, "[<1):1") || !strings.Contains(s, "[>=10):1") {
		t.Errorf("String = %q", s)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(1)
	b := NewHistogram(1)
	a.Observe(0)
	b.Observe(2)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Counts[0] != 1 || a.Counts[1] != 1 {
		t.Errorf("merged counts %v", a.Counts)
	}
	c := NewHistogram(1, 2)
	if err := a.Merge(c); err == nil {
		t.Error("merging mismatched layouts succeeded")
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder Enabled")
	}
	r.Record(disk.Event{})
	r.Span(Span{})
	r.Clean(CleanRecord{})
	r.Reset()
	if r.Spans() != nil || r.Events() != nil || r.Cleans() != nil {
		t.Error("nil recorder returned records")
	}
	if r.Aggregates() != nil {
		t.Error("nil recorder returned aggregates")
	}
	if err := r.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteJSONL: %v", err)
	}
}

func TestWriteCost(t *testing.T) {
	cases := []struct {
		read, copied int64
		want         float64
	}{
		{1000, 0, 2},    // empty victim: read it, write nothing back
		{1000, 500, 4},  // u = 0.5: 2/(1-0.5)
		{1000, 750, 8},  // u = 0.75: 2/(1-0.75)
		{1000, 1000, 0}, // fully live: unbounded, reported as 0
		{1000, 1200, 0}, // pathological copied > read
		{0, 0, 0},       // nothing cleaned
	}
	for _, c := range cases {
		if got := writeCost(c.read, c.copied); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("writeCost(%d, %d) = %v, want %v", c.read, c.copied, got, c.want)
		}
	}
}

func TestCleanDerivesWriteCost(t *testing.T) {
	r := NewRecorder()
	r.Clean(CleanRecord{Seg: 3, Utilization: 0.5, BytesRead: 1 << 20, BytesCopied: 1 << 19})
	cleans := r.Cleans()
	if len(cleans) != 1 {
		t.Fatalf("got %d cleans", len(cleans))
	}
	if got := cleans[0].WriteCost; math.Abs(got-4) > 1e-12 {
		t.Errorf("WriteCost = %v, want 4", got)
	}
}

func TestAggregates(t *testing.T) {
	r := NewRecorder()
	r.Span(Span{Op: "write", Path: "/a", Start: 0, End: sim.Time(1000)})
	r.Span(Span{Op: "write", Path: "/b", Start: sim.Time(1000), End: sim.Time(4000), CPU: 10})
	r.Span(Span{Op: "read", Path: "/a", Start: sim.Time(4000), End: sim.Time(4500), Err: "read /a: boom"})
	r.Record(disk.Event{Kind: disk.OpWrite, Sectors: 8, Cause: disk.CauseLogAppend, Service: 100})
	r.Record(disk.Event{Kind: disk.OpWrite, Sectors: 8, Cause: disk.CauseLogAppend, Service: 300})
	r.Record(disk.Event{Kind: disk.OpRead, Sectors: 2, Cause: disk.CauseReadMiss, Service: 50})
	r.Record(disk.Event{Kind: disk.OpRead, Sectors: 1, Cause: disk.CauseOther, Service: 25})
	r.Clean(CleanRecord{Utilization: 0.25, BytesRead: 400, BytesCopied: 100, BytesReclaimed: 300})

	a := r.Aggregates()
	if len(a.Ops) != 2 || a.Ops[0].Op != "read" || a.Ops[1].Op != "write" {
		t.Fatalf("ops = %+v", a.Ops)
	}
	w := a.Ops[1]
	if w.Count != 2 || w.CPU != 10 || w.Total != 4000 || w.Min != 1000 || w.Max != 3000 {
		t.Errorf("write stats = %+v", w)
	}
	if w.Mean() != 2000 {
		t.Errorf("write mean = %v", w.Mean())
	}
	if a.Ops[0].Errors != 1 {
		t.Errorf("read errors = %d", a.Ops[0].Errors)
	}

	if a.DiskBusy != 475 {
		t.Errorf("DiskBusy = %v, want 475", a.DiskBusy)
	}
	named, total := a.AttributedBusy()
	if named != 450 || total != 475 {
		t.Errorf("AttributedBusy = %v, %v; want 450, 475", named, total)
	}
	var busy sim.Duration
	for _, io := range a.IO {
		busy += io.Busy
		if io.Cause == disk.CauseLogAppend && (io.Requests != 2 || io.Sectors != 16) {
			t.Errorf("log-append bucket = %+v", io)
		}
	}
	if busy != a.DiskBusy {
		t.Errorf("ByCause busy %v != DiskBusy %v", busy, a.DiskBusy)
	}

	if a.Clean.Activations != 1 || a.Clean.BytesReclaimed != 300 {
		t.Errorf("clean stats = %+v", a.Clean)
	}
	if math.Abs(a.Clean.WriteCost-(400.0+100+300)/300) > 1e-12 {
		t.Errorf("clean write cost = %v", a.Clean.WriteCost)
	}
	if a.Clean.Utilization.Total() != 1 {
		t.Errorf("utilization histogram = %v", a.Clean.Utilization)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Span(Span{Op: "create", Path: "/f0", Start: sim.Time(10), End: sim.Time(30), CPU: 5})
	r.Span(Span{Op: "remove", Path: "/f0", Start: sim.Time(40), End: sim.Time(45), Err: "remove /f0: gone"})
	r.Record(disk.Event{Time: sim.Time(12), Kind: disk.OpWrite, Sector: 64, Sectors: 8,
		Sync: true, Cause: disk.CauseCheckpoint, Service: 700, Label: "checkpoint"})
	r.Record(disk.Event{Time: sim.Time(20), Kind: disk.OpRead, Sector: 8, Sectors: 2,
		Cause: disk.CauseReadMiss, Service: 200, Label: "file read"})
	r.Clean(CleanRecord{Time: sim.Time(25), Seg: 7, Utilization: 0.5,
		BytesRead: 1000, BytesCopied: 500, BytesReclaimed: 500})

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 5 {
		t.Fatalf("wrote %d lines, want 5:\n%s", n, buf.String())
	}

	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("read %d records", len(recs))
	}

	live := r.Aggregates()
	parsed := AggregateRecords(recs)
	if len(parsed.Ops) != len(live.Ops) {
		t.Fatalf("parsed %d ops, live %d", len(parsed.Ops), len(live.Ops))
	}
	for i := range live.Ops {
		if parsed.Ops[i].Op != live.Ops[i].Op || parsed.Ops[i].Count != live.Ops[i].Count ||
			parsed.Ops[i].Total != live.Ops[i].Total || parsed.Ops[i].Errors != live.Ops[i].Errors {
			t.Errorf("op %d: parsed %+v, live %+v", i, parsed.Ops[i], live.Ops[i])
		}
	}
	if parsed.DiskBusy != live.DiskBusy {
		t.Errorf("parsed DiskBusy %v, live %v", parsed.DiskBusy, live.DiskBusy)
	}
	if len(parsed.IO) != len(live.IO) {
		t.Fatalf("parsed %d IO buckets, live %d", len(parsed.IO), len(live.IO))
	}
	for i := range live.IO {
		if parsed.IO[i] != live.IO[i] {
			t.Errorf("IO %d: parsed %+v, live %+v", i, parsed.IO[i], live.IO[i])
		}
	}
	if parsed.Clean.Activations != 1 || parsed.Clean.WriteCost != live.Clean.WriteCost {
		t.Errorf("parsed clean %+v, live %+v", parsed.Clean, live.Clean)
	}
}

func TestReadJSONLBadLine(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"type\":\"span\"}\nnot json\n"))
	if err == nil {
		t.Fatal("bad line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q does not name the line", err)
	}
}

func TestResetDiscards(t *testing.T) {
	r := NewRecorder()
	r.Span(Span{Op: "x"})
	r.Record(disk.Event{})
	r.Clean(CleanRecord{})
	r.Reset()
	if len(r.Spans()) != 0 || len(r.Events()) != 0 || len(r.Cleans()) != 0 {
		t.Error("Reset left records behind")
	}
}
