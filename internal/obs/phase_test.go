package obs

import (
	"testing"

	"lfs/internal/disk"
	"lfs/internal/sim"
)

func TestPhaseKindNames(t *testing.T) {
	seen := make(map[string]bool)
	for k := PhaseKind(0); k < NumPhaseKinds; k++ {
		name := k.String()
		if name == "" || seen[name] {
			t.Fatalf("kind %d: empty or duplicate name %q", k, name)
		}
		seen[name] = true
		back, ok := ParsePhaseKind(name)
		if !ok || back != k {
			t.Errorf("ParsePhaseKind(%q) = %v, %v; want %v, true", name, back, ok, k)
		}
	}
	if _, ok := ParsePhaseKind("no-such-phase"); ok {
		t.Error("ParsePhaseKind accepted an unknown name")
	}
	if got := PhaseKind(200).String(); got != "phase(200)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestPhaseAccumExactness(t *testing.T) {
	var a PhaseAccum
	a.Add(PhaseLockWait, 10*sim.Millisecond)
	a.Add(PhaseQueueWait, 5*sim.Millisecond)
	a.AddService(disk.CauseLogAppend, 20*sim.Millisecond)
	a.AddService(disk.CauseReadMiss, 3*sim.Millisecond)
	a.Add(PhaseCommitWait, 7*sim.Millisecond)

	latency := 50 * sim.Millisecond // 5ms of CPU residual
	phases := a.Phases(latency)
	var sum sim.Duration
	for _, p := range phases {
		sum += p.Dur
	}
	if sum != latency {
		t.Fatalf("phases sum to %v, want %v (exactness invariant)", sum, latency)
	}
	if phases[0].Kind != PhaseCPU || phases[0].Dur != 5*sim.Millisecond {
		t.Errorf("residual CPU = %+v, want 5ms first", phases[0])
	}
	// Emission order is kind order, disk_service split by cause in
	// cause order.
	wantKinds := []PhaseKind{PhaseCPU, PhaseLockWait, PhaseQueueWait,
		PhaseDiskService, PhaseDiskService, PhaseCommitWait}
	if len(phases) != len(wantKinds) {
		t.Fatalf("%d phases, want %d: %+v", len(phases), len(wantKinds), phases)
	}
	for i, k := range wantKinds {
		if phases[i].Kind != k {
			t.Errorf("phase %d kind = %v, want %v", i, phases[i].Kind, k)
		}
	}
	if phases[3].Cause != disk.CauseLogAppend || phases[4].Cause != disk.CauseReadMiss {
		t.Errorf("disk_service causes out of cause order: %+v %+v", phases[3], phases[4])
	}

	totals := PhaseTotals(phases)
	if totals[PhaseDiskService] != 23*sim.Millisecond {
		t.Errorf("disk_service total = %v, want 23ms", totals[PhaseDiskService])
	}
	var total sim.Duration
	for _, d := range totals {
		total += d
	}
	if total != latency {
		t.Errorf("PhaseTotals sum = %v, want %v", total, latency)
	}
}

func TestPhaseAccumNegativeResidualSurfaces(t *testing.T) {
	// Over-attribution must not be hidden: the CPU residual goes
	// negative and the sum still equals the latency, so PhasesExact
	// holds but the bug is visible in the phase list.
	var a PhaseAccum
	a.Add(PhaseCommitWait, 30*sim.Millisecond)
	phases := a.Phases(20 * sim.Millisecond)
	if phases[0].Kind != PhaseCPU || phases[0].Dur != -10*sim.Millisecond {
		t.Fatalf("negative residual not surfaced: %+v", phases)
	}
}

func TestPhaseAccumZeroAndReset(t *testing.T) {
	var a PhaseAccum
	if got := a.Phases(0); got != nil {
		t.Errorf("empty accumulator at zero latency: %v, want nil", got)
	}
	a.Add(PhaseCleaner, -sim.Millisecond) // ignored
	a.Add(NumPhaseKinds, sim.Millisecond) // out of range, ignored
	if a.Attributed() != 0 {
		t.Errorf("invalid Adds were counted: %v", a.Attributed())
	}
	a.Add(PhaseCleaner, sim.Millisecond)
	a.Reset()
	if a.Attributed() != 0 {
		t.Errorf("Reset left %v attributed", a.Attributed())
	}
}

func TestPhaseAccumReclassify(t *testing.T) {
	var a PhaseAccum
	a.Add(PhaseLockWait, 8*sim.Millisecond)
	a.Reclassify(PhaseLockWait, PhasePiggybackWait)
	if a.kinds[PhaseLockWait] != 0 || a.kinds[PhasePiggybackWait] != 8*sim.Millisecond {
		t.Errorf("reclassify moved wrong amounts: lock=%v piggyback=%v",
			a.kinds[PhaseLockWait], a.kinds[PhasePiggybackWait])
	}
	if a.Attributed() != 8*sim.Millisecond {
		t.Errorf("reclassify changed the total: %v", a.Attributed())
	}
	// Disk service cannot be reclassified (its time is pinned to
	// causes); no-op, not corruption.
	a.AddService(disk.CauseLogAppend, 4*sim.Millisecond)
	a.Reclassify(PhaseDiskService, PhaseCommitWait)
	if a.kinds[PhaseDiskService] != 4*sim.Millisecond {
		t.Errorf("disk_service reclassified: %v", a.kinds[PhaseDiskService])
	}
}

func TestSpanPhasesExact(t *testing.T) {
	s := Span{Start: 0, End: sim.Time(10 * sim.Millisecond), Phases: []Phase{
		{Kind: PhaseCPU, Dur: 4 * sim.Millisecond},
		{Kind: PhaseCommitWait, Dur: 6 * sim.Millisecond},
	}}
	if !s.PhasesExact() {
		t.Error("exact span reported inexact")
	}
	s.Phases[1].Dur--
	if s.PhasesExact() {
		t.Error("off-by-one span reported exact")
	}
	// Phase-less spans are exact only at zero latency (v1 traces).
	v1 := Span{Start: 0, End: sim.Time(sim.Millisecond)}
	if v1.PhasesExact() {
		t.Error("phase-less nonzero-latency span reported exact")
	}
}

func TestRecorderLimitRing(t *testing.T) {
	r := NewRecorderLimit(3)
	for i := 0; i < 5; i++ {
		r.Span(Span{Op: "write", CPU: int64(i)})
		r.Record(disk.Event{Sector: int64(i)})
		r.Clean(CleanRecord{Seg: i})
	}
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("%d spans retained, want 3", len(spans))
	}
	// Oldest-first unroll: 2, 3, 4 survive.
	for i, s := range spans {
		if s.CPU != int64(i+2) {
			t.Errorf("span %d CPU = %d, want %d (ring order)", i, s.CPU, i+2)
		}
	}
	if evs := r.Events(); len(evs) != 3 || evs[0].Sector != 2 {
		t.Errorf("events ring wrong: %+v", evs)
	}
	if cls := r.Cleans(); len(cls) != 3 || cls[2].Seg != 4 {
		t.Errorf("cleans ring wrong: %+v", cls)
	}
	ds, de, dc := r.Dropped()
	if ds != 2 || de != 2 || dc != 2 {
		t.Errorf("Dropped() = %d, %d, %d; want 2, 2, 2", ds, de, dc)
	}
	agg := r.Aggregates()
	if agg.DroppedSpans != 2 || agg.DroppedEvents != 2 || agg.DroppedCleans != 2 {
		t.Errorf("Aggregates dropped = %d, %d, %d; want 2, 2, 2",
			agg.DroppedSpans, agg.DroppedEvents, agg.DroppedCleans)
	}
	if agg.Ops[0].Count != 3 {
		t.Errorf("aggregation saw %d spans, want the 3 retained", agg.Ops[0].Count)
	}

	r.Reset()
	if s, e, c := r.Dropped(); s != 0 || e != 0 || c != 0 {
		t.Errorf("Reset kept dropped counters: %d %d %d", s, e, c)
	}
	r.Span(Span{Op: "read"})
	if len(r.Spans()) != 1 {
		t.Errorf("recorder unusable after Reset")
	}
	// Unlimited and negative-n recorders never drop.
	for _, rec := range []*Recorder{NewRecorder(), NewRecorderLimit(-1)} {
		for i := 0; i < 10; i++ {
			rec.Span(Span{Op: "x"})
		}
		if len(rec.Spans()) != 10 {
			t.Errorf("unlimited recorder dropped records")
		}
	}
}
