package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"lfs/internal/disk"
	"lfs/internal/sim"
)

// Record is the JSONL wire form: one line per span, disk event, or
// cleaner activation, discriminated by Type. Times are simulated
// nanoseconds since the simulation epoch.
type Record struct {
	Type string `json:"type"` // "span" | "io" | "clean"

	// V is the trace schema version. Version 2 added span phase
	// decomposition (Phases) and the io queue-wait split (Wait).
	// Files written before versioning carry no v field and parse as
	// 0, meaning v1; readers reject versions above the current one.
	V int `json:"v,omitempty"`

	// span
	Op    string `json:"op,omitempty"`
	Path  string `json:"path,omitempty"`
	Start int64  `json:"start_ns,omitempty"`
	End   int64  `json:"end_ns,omitempty"`
	CPU   int64  `json:"cpu,omitempty"`
	Err   string `json:"err,omitempty"`
	// Phases is the span's latency decomposition (v2): ordered
	// segments whose dur_ns sum to end_ns - start_ns exactly.
	Phases []PhaseRec `json:"phases,omitempty"`

	// span and io share Client: the issuing client ID in multi-client
	// runs; omitted (0) for unattributed traffic, so single-client
	// traces are byte-identical to those written before the field
	// existed.
	Client int `json:"client,omitempty"`

	// span and io also share Shard: the executing shard's 1-based ID
	// in sharded multi-log runs; omitted (0) for unsharded instances,
	// keeping pre-sharding traces byte-identical, same as Client.
	Shard int `json:"shard,omitempty"`

	// io
	Time    int64  `json:"time_ns,omitempty"`
	Kind    string `json:"kind,omitempty"`
	Sector  int64  `json:"sector,omitempty"`
	Sectors int    `json:"sectors,omitempty"`
	Sync    bool   `json:"sync,omitempty"`
	Cause   string `json:"cause,omitempty"`
	Service int64  `json:"service_ns,omitempty"`
	// Wait is the request's queue wait (v2): time between issue and
	// the arm starting service, so wait_ns + service_ns spans the
	// request's life end to end. Omitted when zero.
	Wait  int64  `json:"wait_ns,omitempty"`
	Label string `json:"label,omitempty"`

	// clean (Time is shared with io)
	Seg            int     `json:"seg,omitempty"`
	Utilization    float64 `json:"util,omitempty"`
	BytesRead      int64   `json:"bytes_read,omitempty"`
	BytesCopied    int64   `json:"bytes_copied,omitempty"`
	BytesReclaimed int64   `json:"bytes_reclaimed,omitempty"`
	WriteCost      float64 `json:"write_cost,omitempty"`
}

// PhaseRec is one phase segment on the wire.
type PhaseRec struct {
	Kind string `json:"kind"`
	// Cause names the serviced request's IOCause for disk_service
	// phases; omitted for every other kind.
	Cause string `json:"cause,omitempty"`
	Dur   int64  `json:"dur_ns"`
}

// TraceVersion is the trace schema version WriteJSONL emits.
const TraceVersion = 2

// phaseRecs converts a span's phase list to wire form.
func phaseRecs(phases []Phase) []PhaseRec {
	if len(phases) == 0 {
		return nil
	}
	out := make([]PhaseRec, len(phases))
	for i, p := range phases {
		out[i] = PhaseRec{Kind: p.Kind.String(), Dur: int64(p.Dur)}
		if p.Kind == PhaseDiskService {
			out[i].Cause = p.Cause.String()
		}
	}
	return out
}

// parsePhases converts wire phases back to the in-memory form.
func parsePhases(recs []PhaseRec) []Phase {
	if len(recs) == 0 {
		return nil
	}
	out := make([]Phase, len(recs))
	for i, pr := range recs {
		kind, _ := ParsePhaseKind(pr.Kind)
		cause, _ := disk.ParseIOCause(pr.Cause)
		out[i] = Phase{Kind: kind, Cause: cause, Dur: sim.Duration(pr.Dur)}
	}
	return out
}

// WriteJSONL writes everything recorded so far as one JSON object per
// line, in record-type order (spans, then I/O, then cleans); within a
// type, records are in the order they were recorded, which is
// simulated-time order.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range r.spansLocked() {
		rec := Record{Type: "span", V: TraceVersion, Op: s.Op, Path: s.Path,
			Start: int64(s.Start), End: int64(s.End), CPU: s.CPU, Err: s.Err,
			Client: s.Client, Shard: s.Shard, Phases: phaseRecs(s.Phases)}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	for _, ev := range r.eventsLocked() {
		rec := Record{Type: "io", V: TraceVersion, Time: int64(ev.Time), Kind: ev.Kind.String(),
			Sector: ev.Sector, Sectors: ev.Sectors, Sync: ev.Sync,
			Cause: ev.Cause.String(), Service: int64(ev.Service), Wait: int64(ev.Wait),
			Label: ev.Label, Client: ev.Client, Shard: ev.Shard}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	for _, c := range r.cleansLocked() {
		rec := Record{Type: "clean", V: TraceVersion, Time: int64(c.Time), Seg: c.Seg,
			Utilization: c.Utilization, BytesRead: c.BytesRead,
			BytesCopied: c.BytesCopied, BytesReclaimed: c.BytesReclaimed,
			WriteCost: c.WriteCost}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		if rec.V > TraceVersion {
			return nil, fmt.Errorf("obs: trace line %d: schema version %d newer than supported %d", line, rec.V, TraceVersion)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// AggregateRecords computes the same Aggregates over parsed JSONL
// records that Recorder.Aggregates computes over live ones; lfstrace
// uses it to summarise a trace file.
func AggregateRecords(recs []Record) *Aggregates {
	var spans []Span
	var events []disk.Event
	var cleans []CleanRecord
	for _, rec := range recs {
		switch rec.Type {
		case "span":
			spans = append(spans, Span{Op: rec.Op, Path: rec.Path,
				Start: sim.Time(rec.Start), End: sim.Time(rec.End),
				CPU: rec.CPU, Err: rec.Err, Client: rec.Client, Shard: rec.Shard,
				Phases: parsePhases(rec.Phases)})
		case "io":
			cause, _ := disk.ParseIOCause(rec.Cause)
			kind := disk.OpRead
			if rec.Kind == disk.OpWrite.String() {
				kind = disk.OpWrite
			}
			events = append(events, disk.Event{Time: sim.Time(rec.Time), Kind: kind,
				Sector: rec.Sector, Sectors: rec.Sectors, Sync: rec.Sync,
				Cause: cause, Service: sim.Duration(rec.Service), Wait: sim.Duration(rec.Wait),
				Label: rec.Label, Client: rec.Client, Shard: rec.Shard})
		case "clean":
			cleans = append(cleans, CleanRecord{Time: sim.Time(rec.Time), Seg: rec.Seg,
				Utilization: rec.Utilization, BytesRead: rec.BytesRead,
				BytesCopied: rec.BytesCopied, BytesReclaimed: rec.BytesReclaimed,
				WriteCost: rec.WriteCost})
		}
	}
	return aggregate(spans, events, cleans)
}
