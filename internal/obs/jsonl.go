package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"lfs/internal/disk"
	"lfs/internal/sim"
)

// Record is the JSONL wire form: one line per span, disk event, or
// cleaner activation, discriminated by Type. Times are simulated
// nanoseconds since the simulation epoch.
type Record struct {
	Type string `json:"type"` // "span" | "io" | "clean"

	// span
	Op    string `json:"op,omitempty"`
	Path  string `json:"path,omitempty"`
	Start int64  `json:"start_ns,omitempty"`
	End   int64  `json:"end_ns,omitempty"`
	CPU   int64  `json:"cpu,omitempty"`
	Err   string `json:"err,omitempty"`

	// span and io share Client: the issuing client ID in multi-client
	// runs; omitted (0) for unattributed traffic, so single-client
	// traces are byte-identical to those written before the field
	// existed.
	Client int `json:"client,omitempty"`

	// span and io also share Shard: the executing shard's 1-based ID
	// in sharded multi-log runs; omitted (0) for unsharded instances,
	// keeping pre-sharding traces byte-identical, same as Client.
	Shard int `json:"shard,omitempty"`

	// io
	Time    int64  `json:"time_ns,omitempty"`
	Kind    string `json:"kind,omitempty"`
	Sector  int64  `json:"sector,omitempty"`
	Sectors int    `json:"sectors,omitempty"`
	Sync    bool   `json:"sync,omitempty"`
	Cause   string `json:"cause,omitempty"`
	Service int64  `json:"service_ns,omitempty"`
	Label   string `json:"label,omitempty"`

	// clean (Time is shared with io)
	Seg            int     `json:"seg,omitempty"`
	Utilization    float64 `json:"util,omitempty"`
	BytesRead      int64   `json:"bytes_read,omitempty"`
	BytesCopied    int64   `json:"bytes_copied,omitempty"`
	BytesReclaimed int64   `json:"bytes_reclaimed,omitempty"`
	WriteCost      float64 `json:"write_cost,omitempty"`
}

// WriteJSONL writes everything recorded so far as one JSON object per
// line, in record-type order (spans, then I/O, then cleans); within a
// type, records are in the order they were recorded, which is
// simulated-time order.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range r.spans {
		rec := Record{Type: "span", Op: s.Op, Path: s.Path,
			Start: int64(s.Start), End: int64(s.End), CPU: s.CPU, Err: s.Err,
			Client: s.Client, Shard: s.Shard}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	for _, ev := range r.events {
		rec := Record{Type: "io", Time: int64(ev.Time), Kind: ev.Kind.String(),
			Sector: ev.Sector, Sectors: ev.Sectors, Sync: ev.Sync,
			Cause: ev.Cause.String(), Service: int64(ev.Service), Label: ev.Label,
			Client: ev.Client, Shard: ev.Shard}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	for _, c := range r.cleans {
		rec := Record{Type: "clean", Time: int64(c.Time), Seg: c.Seg,
			Utilization: c.Utilization, BytesRead: c.BytesRead,
			BytesCopied: c.BytesCopied, BytesReclaimed: c.BytesReclaimed,
			WriteCost: c.WriteCost}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// AggregateRecords computes the same Aggregates over parsed JSONL
// records that Recorder.Aggregates computes over live ones; lfstrace
// uses it to summarise a trace file.
func AggregateRecords(recs []Record) *Aggregates {
	var spans []Span
	var events []disk.Event
	var cleans []CleanRecord
	for _, rec := range recs {
		switch rec.Type {
		case "span":
			spans = append(spans, Span{Op: rec.Op, Path: rec.Path,
				Start: sim.Time(rec.Start), End: sim.Time(rec.End),
				CPU: rec.CPU, Err: rec.Err, Client: rec.Client, Shard: rec.Shard})
		case "io":
			cause, _ := disk.ParseIOCause(rec.Cause)
			kind := disk.OpRead
			if rec.Kind == disk.OpWrite.String() {
				kind = disk.OpWrite
			}
			events = append(events, disk.Event{Time: sim.Time(rec.Time), Kind: kind,
				Sector: rec.Sector, Sectors: rec.Sectors, Sync: rec.Sync,
				Cause: cause, Service: sim.Duration(rec.Service), Label: rec.Label,
				Client: rec.Client, Shard: rec.Shard})
		case "clean":
			cleans = append(cleans, CleanRecord{Time: sim.Time(rec.Time), Seg: rec.Seg,
				Utilization: rec.Utilization, BytesRead: rec.BytesRead,
				BytesCopied: rec.BytesCopied, BytesReclaimed: rec.BytesReclaimed,
				WriteCost: rec.WriteCost})
		}
	}
	return aggregate(spans, events, cleans)
}
