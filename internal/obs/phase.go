package obs

import (
	"fmt"

	"lfs/internal/disk"
	"lfs/internal/sim"
)

// PhaseKind names one segment of an operation's latency. The kinds
// mirror the disk.IOCause idiom: a small closed enum with stable
// string names shared by the trace JSONL schema (Record.Phases), the
// metrics plane (op.fsync.phase.<kind> series), and the lfstrace
// -critpath report.
//
// Together the phases carry an exactness invariant, the latency
// analogue of the disk's 100%-busy-time decomposition: the Phase list
// attached to a Span sums to Span.Latency() to the tick. The
// simulation is single-threaded, so every nanosecond of an
// operation's latency has exactly one source — CPU charged against
// the simulated clock, waiting for the disk arm, or waiting inside a
// named subsystem (group commit, the cleaner, cross-shard fan-out) —
// and the instrumented producers attribute each advance to exactly
// one kind. PhaseCPU is the residual: latency not spent waiting is
// compute, by construction.
type PhaseKind uint8

// The phase kinds, in report order.
const (
	// PhaseCPU is simulated compute: clock advances charged by
	// sim.CPU. It is derived as the residual after all waits.
	PhaseCPU PhaseKind = iota
	// PhaseLockWait is serialization wait: the operation was
	// dispatched later than scheduled because other clients'
	// operations held the (single-threaded) file system.
	PhaseLockWait
	// PhaseQueueWait is time a blocking disk request spent behind
	// earlier queued transfers before the arm picked it up.
	PhaseQueueWait
	// PhaseDiskService is the disk arm servicing a blocking request
	// this operation issued; Phase.Cause carries the request's
	// IOCause.
	PhaseDiskService
	// PhaseCommitWait is the group-commit leader's wait: the fsync
	// that flushed the dirty set drains the disk until its own
	// segment transfer (and everything queued before it) completes.
	PhaseCommitWait
	// PhasePiggybackWait is the follower's wait: the fsync found its
	// file already riding an earlier group commit and only waited for
	// the in-flight transfer — the paper's N-syncs-one-transfer
	// scaling, and the wait NVM write staging would eliminate.
	PhasePiggybackWait
	// PhaseCleaner is cleaner interference: the operation triggered a
	// cleaner activation (watermark or idle cleaning) and carried its
	// entire cost — reads, relocation writes, mid-run checkpoints.
	PhaseCleaner
	// PhaseFanout is cross-shard fan-out wait: the shard router
	// broadcast FlushAsync to the other shards before delegating, and
	// their issue-time CPU advanced the shared clock.
	PhaseFanout

	// NumPhaseKinds bounds the kind space; PhaseAccum is indexed by
	// kind.
	NumPhaseKinds
)

// phaseNames indexes PhaseKind.String; the names are stable API used
// in trace files and metrics series names.
var phaseNames = [NumPhaseKinds]string{
	"cpu", "lock_wait", "queue_wait", "disk_service",
	"commit_wait", "piggyback_wait", "cleaner", "fanout_wait",
}

// String returns the kind's stable name.
func (k PhaseKind) String() string {
	if k >= NumPhaseKinds {
		return fmt.Sprintf("phase(%d)", int(k))
	}
	return phaseNames[k]
}

// ParsePhaseKind maps a phase name back to its value, for trace
// readers.
func ParsePhaseKind(s string) (PhaseKind, bool) {
	for i, n := range phaseNames {
		if n == s {
			return PhaseKind(i), true
		}
	}
	return PhaseCPU, false
}

// Phase is one segment of a span's latency. Cause is meaningful only
// for PhaseDiskService, where it names the serviced request's
// disk.IOCause; it is CauseOther (and omitted on the wire) for every
// other kind.
type Phase struct {
	Kind  PhaseKind
	Cause disk.IOCause
	Dur   sim.Duration
}

// PhaseAccum accumulates wait attributions over one operation. The
// file systems keep one per instance, reset at operation entry; the
// fixed arrays keep emission order deterministic (kind order, then
// cause order) without a sort.
type PhaseAccum struct {
	kinds   [NumPhaseKinds]sim.Duration
	service [disk.NumCauses]sim.Duration
}

// Reset clears the accumulator for the next operation.
func (a *PhaseAccum) Reset() { *a = PhaseAccum{} }

// Add charges d to the given kind. PhaseDiskService charged here
// lands under CauseOther; use AddService to attribute it.
func (a *PhaseAccum) Add(kind PhaseKind, d sim.Duration) {
	if d <= 0 || kind >= NumPhaseKinds {
		return
	}
	if kind == PhaseDiskService {
		a.service[disk.CauseOther] += d
	}
	a.kinds[kind] += d
}

// AddService charges d of disk service time under the given cause.
func (a *PhaseAccum) AddService(cause disk.IOCause, d sim.Duration) {
	if d <= 0 {
		return
	}
	if cause >= disk.NumCauses {
		cause = disk.CauseOther
	}
	a.kinds[PhaseDiskService] += d
	a.service[cause] += d
}

// Reclassify moves everything charged under from to to — the hook for
// a producer that learns a wait's real identity only after the fact
// (a dispatch gap turns out to be a follower parked behind the group
// commit that carried its data). PhaseDiskService cannot be
// reclassified: its time is pinned to per-cause sub-entries.
func (a *PhaseAccum) Reclassify(from, to PhaseKind) {
	if from >= NumPhaseKinds || to >= NumPhaseKinds || from == to ||
		from == PhaseDiskService || to == PhaseDiskService {
		return
	}
	a.kinds[to] += a.kinds[from]
	a.kinds[from] = 0
}

// Attributed returns the total wait time charged so far.
func (a *PhaseAccum) Attributed() sim.Duration {
	var total sim.Duration
	for _, d := range a.kinds {
		total += d
	}
	return total
}

// Phases renders the accumulator as a span's ordered phase list for
// an operation of the given latency. The CPU phase is derived as the
// residual — latency minus all attributed waits — so the returned
// list always sums to latency exactly (the exactness invariant); a
// negative residual means an attribution bug and is returned as-is so
// tests catch it rather than the accounting hiding it. Zero-duration
// phases are skipped; a zero-latency operation yields nil.
func (a *PhaseAccum) Phases(latency sim.Duration) []Phase {
	residual := latency - a.Attributed()
	if residual == 0 && a.Attributed() == 0 {
		return nil
	}
	out := make([]Phase, 0, 4)
	if residual != 0 {
		out = append(out, Phase{Kind: PhaseCPU, Dur: residual})
	}
	for k := PhaseCPU + 1; k < NumPhaseKinds; k++ {
		if a.kinds[k] == 0 {
			continue
		}
		if k == PhaseDiskService {
			for c := disk.IOCause(0); c < disk.NumCauses; c++ {
				if a.service[c] > 0 {
					out = append(out, Phase{Kind: PhaseDiskService, Cause: c, Dur: a.service[c]})
				}
			}
			continue
		}
		out = append(out, Phase{Kind: k, Dur: a.kinds[k]})
	}
	return out
}

// PhaseTotals sums a phase list by kind into a fixed-order array —
// the aggregation primitive shared by OpStats, the critpath
// experiment, and lfstrace.
func PhaseTotals(phases []Phase) [NumPhaseKinds]sim.Duration {
	var totals [NumPhaseKinds]sim.Duration
	for _, p := range phases {
		if p.Kind < NumPhaseKinds {
			totals[p.Kind] += p.Dur
		}
	}
	return totals
}
