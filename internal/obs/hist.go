package obs

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-bucket histogram: Counts[i] holds observations
// v with Bounds[i-1] <= v < Bounds[i]; the last bucket is unbounded
// above. len(Counts) == len(Bounds)+1.
type Histogram struct {
	Bounds []float64
	Counts []int64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds.
func NewHistogram(bounds ...float64) Histogram {
	return Histogram{Bounds: bounds, Counts: make([]int64, len(bounds)+1)}
}

// NewLatencyHistogram returns the log-scale latency histogram used for
// per-op latencies, in seconds: 1µs to 1s in roughly 1-3-10 steps.
func NewLatencyHistogram() Histogram {
	return NewHistogram(1e-6, 1e-5, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1)
}

// NewUtilizationHistogram returns the segment-utilisation histogram:
// ten linear buckets over [0, 1].
func NewUtilizationHistogram() Histogram {
	return NewHistogram(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
}

// Observe adds one observation.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.Bounds {
		if v < b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Counts)-1]++
}

// Total returns the number of observations.
func (h Histogram) Total() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Merge adds other's counts into h; the bucket layouts must match.
func (h *Histogram) Merge(other Histogram) error {
	if len(h.Counts) != len(other.Counts) {
		return fmt.Errorf("obs: merging histograms with %d and %d buckets",
			len(h.Counts), len(other.Counts))
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	return nil
}

// String renders the non-empty buckets on one line, e.g.
// "[0.1,0.2):12 [0.8,0.9):3".
func (h Histogram) String() string {
	var b strings.Builder
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		switch {
		case i == 0:
			fmt.Fprintf(&b, "[<%g):%d", h.Bounds[0], c)
		case i == len(h.Bounds):
			fmt.Fprintf(&b, "[>=%g):%d", h.Bounds[i-1], c)
		default:
			fmt.Fprintf(&b, "[%g,%g):%d", h.Bounds[i-1], h.Bounds[i], c)
		}
	}
	if b.Len() == 0 {
		return "(empty)"
	}
	return b.String()
}
