package obs

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bucket histogram: Counts[i] holds observations
// v with Bounds[i-1] <= v < Bounds[i]; the last bucket is unbounded
// above. len(Counts) == len(Bounds)+1. Non-finite observations (NaN,
// ±Inf) never land in a bucket — NaN compares false against every
// bound, so it would otherwise silently inflate the unbounded top
// bucket — and are counted in NonFinite instead.
type Histogram struct {
	Bounds    []float64
	Counts    []int64
	NonFinite int64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds.
func NewHistogram(bounds ...float64) Histogram {
	return Histogram{Bounds: bounds, Counts: make([]int64, len(bounds)+1)}
}

// NewLatencyHistogram returns the log-scale latency histogram used for
// per-op latencies, in seconds: 1µs to 1s in roughly 1-3-10 steps.
func NewLatencyHistogram() Histogram {
	return NewHistogram(1e-6, 1e-5, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1)
}

// NewUtilizationHistogram returns the segment-utilisation histogram:
// ten linear buckets over [0, 1].
func NewUtilizationHistogram() Histogram {
	return NewHistogram(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
}

// Observe adds one observation. Non-finite values are counted in
// NonFinite, not in any bucket.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.NonFinite++
		return
	}
	for i, b := range h.Bounds {
		if v < b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Counts)-1]++
}

// Total returns the number of bucketed (finite) observations.
func (h Histogram) Total() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Merge adds other's counts into h. The bucket layouts must match in
// both length and bound values: two same-length histograms over
// different bounds would otherwise merge without error into a
// meaningless sum.
func (h *Histogram) Merge(other Histogram) error {
	if len(h.Counts) != len(other.Counts) {
		return fmt.Errorf("obs: merging histograms with %d and %d buckets",
			len(h.Counts), len(other.Counts))
	}
	for i, b := range h.Bounds {
		if b != other.Bounds[i] {
			return fmt.Errorf("obs: merging histograms with different bounds (%g vs %g at bucket %d)",
				b, other.Bounds[i], i)
		}
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.NonFinite += other.NonFinite
	return nil
}

// Quantile returns the bucket-interpolated p-quantile (p in [0,1]) of
// the finite observations: the bucket holding the p·Total()-th
// observation is found and the value is interpolated linearly inside
// it. The first bucket interpolates over [0, Bounds[0]) (or from
// Bounds[0] when it is negative); the unbounded top bucket returns its
// lower bound, a deliberate underestimate. An empty histogram returns
// 0.
func (h Histogram) Quantile(p float64) float64 {
	total := h.Total()
	if total == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) < rank {
			cum += float64(c)
			continue
		}
		// The rank lands in bucket i.
		if i == len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		} else if h.Bounds[0] < 0 {
			lo = h.Bounds[0]
		}
		hi := h.Bounds[i]
		frac := (rank - cum) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.Bounds[len(h.Bounds)-1]
}

// String renders the non-empty buckets on one line, e.g.
// "[0.1,0.2):12 [0.8,0.9):3".
func (h Histogram) String() string {
	var b strings.Builder
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		switch {
		case i == 0:
			fmt.Fprintf(&b, "[<%g):%d", h.Bounds[0], c)
		case i == len(h.Bounds):
			fmt.Fprintf(&b, "[>=%g):%d", h.Bounds[i-1], c)
		default:
			fmt.Fprintf(&b, "[%g,%g):%d", h.Bounds[i-1], h.Bounds[i], c)
		}
	}
	if b.Len() == 0 {
		return "(empty)"
	}
	return b.String()
}
