package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"lfs/internal/sim"
)

// This file is the simulated-clock metrics plane: a pull-model
// Registry of named counters/gauges/histograms and a Sampler that, at
// a fixed simulated interval, reads every registered metric and
// appends one Sample to an in-memory time series (exported as JSONL,
// replayed by cmd/lfstop).
//
// Like tracing, sampling must perturb the simulated timeline by
// exactly zero: collectors only *read* state (the file system calls
// Sampler.Tick at operation end, with its lock held, so collectors
// never lock), and the sampler itself never touches the clock, the
// CPU model, or the disk. For a fixed seed the sample series is
// byte-deterministic: collection order is registration order, JSON
// maps marshal with sorted keys, and nothing reads the wall clock.

// MetricsSchemaVersion is the metrics JSONL schema version stamped
// into every sample's "v" field (see FORMAT.md "Metrics JSONL").
const MetricsSchemaVersion = 1

// HistSnapshot is a histogram captured at sample time, in wire form.
type HistSnapshot struct {
	Bounds    []float64 `json:"bounds"`
	Counts    []int64   `json:"counts"`
	NonFinite int64     `json:"nonfinite,omitempty"`
}

// Hist converts the snapshot back to a Histogram (for replay tools).
func (s HistSnapshot) Hist() Histogram {
	return Histogram{
		Bounds:    append([]float64(nil), s.Bounds...),
		Counts:    append([]int64(nil), s.Counts...),
		NonFinite: s.NonFinite,
	}
}

// Sample is one metrics snapshot: every registered counter, gauge,
// and histogram read at one simulated instant, plus the gauges the
// sampler derives from interval deltas (rates, busy fractions,
// latency percentiles). It is the JSONL wire form; map keys marshal
// sorted, so a sample's encoding is deterministic.
type Sample struct {
	Type string `json:"type"` // always "metrics"
	V    int    `json:"v"`    // schema version
	// FS labels the emitting instance when one file carries several
	// (lfsbench -metrics on a sweep experiment).
	FS   string `json:"fs,omitempty"`
	Time int64  `json:"time_ns"`
	Seq  int64  `json:"seq"`

	Counters map[string]int64        `json:"counters,omitempty"`
	Gauges   map[string]float64      `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`
}

// metricDef is one registered metric: a name, what to read, and which
// derived gauges the sampler computes from its interval deltas.
type metricDef struct {
	name  string
	readC func() int64
	readG func() float64
	readH func() Histogram
	// rate: counters also emit name+".rate", the per-interval delta
	// divided by the interval in simulated seconds.
	rate bool
	// frac: nanosecond counters also emit name+".frac", the interval
	// delta divided by the interval length (a busy fraction).
	frac bool
	// quantiles: histograms also emit name+".pNN" gauges, the
	// bucket-interpolated quantiles of the interval's delta histogram.
	quantiles []float64
}

// Registry is an ordered set of named metric collectors. Collectors
// are closures over the owning subsystem's state; they are invoked
// only from Sampler sampling calls, which the owner makes while
// holding its own lock, so collectors must not lock and must not
// mutate anything. Registration happens once, at mount, before any
// sampling; the registry itself is not safe for concurrent use.
type Registry struct {
	defs  []metricDef
	names map[string]bool
}

// register adds a definition, panicking on duplicate names (two
// producers claiming one series is a wiring bug, not a runtime
// condition).
func (r *Registry) register(d metricDef) {
	if r.names == nil {
		r.names = make(map[string]bool)
	}
	if r.names[d.name] {
		panic(fmt.Sprintf("obs: metric %q registered twice", d.name))
	}
	r.names[d.name] = true
	r.defs = append(r.defs, d)
}

// Counter registers a cumulative counter read by fn.
func (r *Registry) Counter(name string, fn func() int64) {
	r.register(metricDef{name: name, readC: fn})
}

// RatedCounter registers a cumulative counter that also emits
// name+".rate": the per-interval delta per simulated second.
func (r *Registry) RatedCounter(name string, fn func() int64) {
	r.register(metricDef{name: name, readC: fn, rate: true})
}

// FracCounter registers a cumulative nanosecond counter that also
// emits name+".frac": the interval delta over the interval length,
// i.e. a busy fraction in [0,1] (values above 1 are possible when the
// counted time is accounted late, e.g. queued writes dispatched at a
// barrier).
func (r *Registry) FracCounter(name string, fn func() int64) {
	r.register(metricDef{name: name, readC: fn, frac: true})
}

// Gauge registers an instantaneous value read by fn.
func (r *Registry) Gauge(name string, fn func() float64) {
	r.register(metricDef{name: name, readG: fn})
}

// Hist registers a cumulative histogram read by fn.
func (r *Registry) Hist(name string, fn func() Histogram) {
	r.register(metricDef{name: name, readH: fn})
}

// QuantileHist registers a cumulative histogram that also emits
// name+".pNN" gauges: the given quantiles of the *interval delta*
// histogram (the distribution of observations made since the previous
// sample), bucket-interpolated by Histogram.Quantile.
func (r *Registry) QuantileHist(name string, fn func() Histogram, qs ...float64) {
	r.register(metricDef{name: name, readH: fn, quantiles: qs})
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.defs) }

// Sampler drives periodic metric collection on the simulated clock.
// The owning file system calls Tick at the end of every operation (and
// the multi-client event loop pumps TickMetrics between operations);
// whenever the clock has crossed the next interval boundary, every
// registered metric is read and one Sample appended. All methods are
// safe on a nil *Sampler and cost nothing, mirroring *Recorder.
type Sampler struct {
	// mu guards everything below: Tick runs under the owning file
	// system's lock while Samples/WriteJSONL may be called from other
	// goroutines.
	mu       sync.Mutex
	reg      Registry
	interval sim.Duration
	label    string
	// bound is set when a file system attaches the sampler at mount;
	// a sampler serves exactly one instance (its registry closures
	// capture that instance's state).
	bound bool
	// started/next track the sampling schedule; seq numbers samples.
	started bool
	next    sim.Time
	seq     int64
	samples []Sample
	// prevTime/prevCounters/prevHists hold the previous sample's raw
	// values for interval-delta derivations (rates, fractions,
	// quantiles).
	prevTime     sim.Time
	prevCounters map[string]int64
	prevHists    map[string][]int64
}

// NewSampler returns a sampler emitting one sample per interval of
// simulated time.
func NewSampler(interval sim.Duration) *Sampler {
	if interval <= 0 {
		panic(fmt.Sprintf("obs: non-positive metrics interval %v", interval))
	}
	return &Sampler{interval: interval}
}

// Enabled reports whether the sampler is non-nil.
func (s *Sampler) Enabled() bool { return s != nil }

// Interval returns the sampling interval.
func (s *Sampler) Interval() sim.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// SetLabel sets the instance label stamped into every sample's "fs"
// field (lfsbench uses it to tell sweep instances apart).
func (s *Sampler) SetLabel(label string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.label = label
	s.mu.Unlock()
}

// Registry returns the sampler's metric registry for producers to
// register against. Must only be used before sampling starts.
func (s *Sampler) Registry() *Registry {
	if s == nil {
		return nil
	}
	return &s.reg
}

// Bind claims the sampler for one file-system instance; a second Bind
// fails. Mount calls it so that a sampler accidentally shared between
// two instances is a mount-time error instead of an interleaved,
// double-registered series.
func (s *Sampler) Bind() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bound {
		return fmt.Errorf("obs: metrics sampler already attached to a file system")
	}
	s.bound = true
	return nil
}

// Due reports whether a sample would be taken at time now.
func (s *Sampler) Due(now sim.Time) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.started || now >= s.next
}

// Tick samples if the clock has reached the next interval boundary
// (the first Tick takes the baseline sample). The caller holds the
// lock protecting the state the registered collectors read.
func (s *Sampler) Tick(now sim.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started && now < s.next {
		return
	}
	s.sampleLocked(now)
}

// SampleNow takes a sample unconditionally — experiments force one at
// run end so the final sample equals the end-of-run aggregates.
func (s *Sampler) SampleNow(now sim.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sampleLocked(now)
}

// sampleLocked reads every registered metric and appends one sample.
// Collection only reads: no clock, CPU, disk, or RNG access, so a run
// with sampling enabled replays the identical simulated timeline.
func (s *Sampler) sampleLocked(now sim.Time) {
	sm := Sample{
		Type: "metrics", V: MetricsSchemaVersion, FS: s.label,
		Time: int64(now), Seq: s.seq,
	}
	interval := now.Sub(s.prevTime)
	if !s.started {
		interval = 0
	}
	counters := make(map[string]int64)
	hists := make(map[string][]int64)
	for _, d := range s.reg.defs {
		switch {
		case d.readC != nil:
			v := d.readC()
			counters[d.name] = v
			if sm.Counters == nil {
				sm.Counters = make(map[string]int64)
			}
			sm.Counters[d.name] = v
			delta := v - s.prevCounters[d.name]
			if d.rate {
				rate := 0.0
				if interval > 0 {
					rate = float64(delta) / interval.Seconds()
				}
				s.setGauge(&sm, d.name+".rate", rate)
			}
			if d.frac {
				frac := 0.0
				if interval > 0 {
					frac = float64(delta) / float64(interval)
				}
				s.setGauge(&sm, d.name+".frac", frac)
			}
		case d.readG != nil:
			s.setGauge(&sm, d.name, d.readG())
		case d.readH != nil:
			h := d.readH()
			snap := HistSnapshot{
				Bounds:    append([]float64(nil), h.Bounds...),
				Counts:    append([]int64(nil), h.Counts...),
				NonFinite: h.NonFinite,
			}
			if sm.Hists == nil {
				sm.Hists = make(map[string]HistSnapshot)
			}
			sm.Hists[d.name] = snap
			hists[d.name] = snap.Counts
			if len(d.quantiles) > 0 {
				delta := Histogram{Bounds: h.Bounds, Counts: deltaCounts(snap.Counts, s.prevHists[d.name])}
				for _, q := range d.quantiles {
					s.setGauge(&sm, fmt.Sprintf("%s.p%g", d.name, q*100), delta.Quantile(q))
				}
			}
		}
	}
	s.samples = append(s.samples, sm)
	s.seq++
	s.prevTime = now
	s.prevCounters = counters
	s.prevHists = hists
	s.started = true
	s.next = now.Add(s.interval)
}

// setGauge stores a derived or read gauge, sanitising non-finite
// values to 0 (encoding/json rejects NaN and ±Inf outright).
func (s *Sampler) setGauge(sm *Sample, name string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	if sm.Gauges == nil {
		sm.Gauges = make(map[string]float64)
	}
	sm.Gauges[name] = v
}

// deltaCounts returns cur-prev bucket-wise; a nil prev means the full
// cumulative counts (first interval).
func deltaCounts(cur, prev []int64) []int64 {
	out := append([]int64(nil), cur...)
	if len(prev) == len(cur) {
		for i := range out {
			out[i] -= prev[i]
		}
	}
	return out
}

// Samples returns a copy of the samples taken so far.
func (s *Sampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.samples...)
}

// WriteJSONL writes every sample as one JSON object per line, in
// sample order. Byte-deterministic for a deterministic run: map keys
// marshal sorted and floats use Go's shortest round-trip form.
func (s *Sampler) WriteJSONL(w io.Writer) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sm := range s.samples {
		if err := enc.Encode(sm); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSamples parses a metrics JSONL stream written by WriteJSONL
// (possibly the concatenation of several samplers' streams). Lines of
// other record types are skipped, so a combined trace+metrics file
// still replays.
func ReadSamples(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var sm Sample
		if err := json.Unmarshal(raw, &sm); err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: %w", line, err)
		}
		if sm.Type != "metrics" {
			continue
		}
		if sm.V != MetricsSchemaVersion {
			return nil, fmt.Errorf("obs: metrics line %d: schema version %d, want %d", line, sm.V, MetricsSchemaVersion)
		}
		out = append(out, sm)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SeriesNames returns the sorted union of counter and gauge series
// names across samples, for replay tools.
func SeriesNames(samples []Sample) []string {
	set := make(map[string]bool)
	for _, sm := range samples {
		for n := range sm.Counters {
			set[n] = true
		}
		for n := range sm.Gauges {
			set[n] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
