package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"lfs/internal/sim"
)

func TestNilSamplerSafe(t *testing.T) {
	var s *Sampler
	if s.Enabled() {
		t.Fatal("nil sampler reports Enabled")
	}
	if s.Due(0) {
		t.Fatal("nil sampler reports Due")
	}
	s.Tick(0)
	s.SampleNow(0)
	s.SetLabel("x")
	if s.Registry() != nil {
		t.Fatal("nil sampler returned a registry")
	}
	if err := s.Bind(); err != nil {
		t.Fatalf("nil Bind: %v", err)
	}
	if got := s.Samples(); got != nil {
		t.Fatalf("nil Samples() = %v, want nil", got)
	}
	if err := s.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteJSONL: %v", err)
	}
	if s.Interval() != 0 {
		t.Fatal("nil Interval() != 0")
	}
}

func TestSamplerTickSchedule(t *testing.T) {
	s := NewSampler(sim.Duration(100))
	var n int64
	s.Registry().Counter("n", func() int64 { return n })

	// First tick takes the baseline regardless of time.
	s.Tick(sim.Time(5))
	n = 10
	// Before the next boundary: no sample.
	s.Tick(sim.Time(50))
	// At/after the boundary: sample.
	s.Tick(sim.Time(105))
	n = 30
	// Boundary is rescheduled from the sample time, not accumulated.
	s.Tick(sim.Time(150))
	s.Tick(sim.Time(205))

	got := s.Samples()
	if len(got) != 3 {
		t.Fatalf("%d samples, want 3", len(got))
	}
	wantTimes := []int64{5, 105, 205}
	wantN := []int64{0, 10, 30}
	for i, sm := range got {
		if sm.Time != wantTimes[i] || sm.Seq != int64(i) || sm.Counters["n"] != wantN[i] {
			t.Errorf("sample %d = {time %d seq %d n %d}, want {time %d seq %d n %d}",
				i, sm.Time, sm.Seq, sm.Counters["n"], wantTimes[i], int64(i), wantN[i])
		}
	}
}

func TestSamplerDerivedGauges(t *testing.T) {
	s := NewSampler(sim.Duration(sim.Second))
	var ops, busy int64
	lat := NewLatencyHistogram()
	s.Registry().RatedCounter("ops", func() int64 { return ops })
	s.Registry().FracCounter("busy_ns", func() int64 { return busy })
	s.Registry().Gauge("bad", func() float64 { return math.NaN() })
	s.Registry().QuantileHist("lat", func() Histogram { return lat }, 0.5, 0.95)

	s.Tick(0) // baseline
	ops, busy = 50, int64(sim.Second)/4
	for i := 0; i < 100; i++ {
		lat.Observe(5e-5)
	}
	s.Tick(sim.Time(sim.Second))

	sm := s.Samples()[1]
	if got := sm.Gauges["ops.rate"]; got != 50 {
		t.Errorf("ops.rate = %g, want 50", got)
	}
	if got := sm.Gauges["busy_ns.frac"]; got != 0.25 {
		t.Errorf("busy_ns.frac = %g, want 0.25", got)
	}
	if got := sm.Gauges["bad"]; got != 0 {
		t.Errorf("non-finite gauge = %g, want sanitised 0", got)
	}
	p50 := sm.Gauges["lat.p50"]
	if p50 < 1e-5 || p50 >= 1e-4 {
		t.Errorf("lat.p50 = %g, want inside bucket [1e-5, 1e-4)", p50)
	}
	if h, ok := sm.Hists["lat"]; !ok || h.Hist().Total() != 100 {
		t.Errorf("lat histogram snapshot missing or wrong total")
	}

	// Next interval: no new observations, so the delta quantile is 0
	// and the rate drops to 0.
	s.Tick(sim.Time(2 * sim.Second))
	sm = s.Samples()[2]
	if got := sm.Gauges["ops.rate"]; got != 0 {
		t.Errorf("idle ops.rate = %g, want 0", got)
	}
	if got := sm.Gauges["lat.p50"]; got != 0 {
		t.Errorf("idle lat.p50 = %g, want 0 (empty delta histogram)", got)
	}
}

func TestSamplerJSONLRoundTrip(t *testing.T) {
	s := NewSampler(sim.Duration(100))
	s.SetLabel("lfs-0")
	var n int64
	u := NewUtilizationHistogram()
	s.Registry().Counter("n", func() int64 { return n })
	s.Registry().Gauge("g", func() float64 { return float64(n) / 2 })
	s.Registry().Hist("util", func() Histogram { return u })

	s.Tick(0)
	n = 4
	u.Observe(0.35)
	s.Tick(sim.Time(100))

	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	// A foreign record type interleaved in the stream is skipped.
	stream := `{"type":"span","op":"create"}` + "\n" + buf.String()
	got, err := ReadSamples(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d samples decoded, want 2", len(got))
	}
	sm := got[1]
	if sm.FS != "lfs-0" || sm.V != MetricsSchemaVersion || sm.Counters["n"] != 4 || sm.Gauges["g"] != 2 {
		t.Fatalf("decoded sample %+v wrong", sm)
	}
	if h := sm.Hists["util"].Hist(); h.Total() != 1 || h.Counts[3] != 1 {
		t.Fatalf("decoded util histogram %v wrong", h)
	}

	names := SeriesNames(got)
	want := []string{"g", "n"}
	if len(names) != len(want) || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("SeriesNames = %v, want %v", names, want)
	}

	// Byte determinism: encoding the same samples twice is identical.
	var buf2 bytes.Buffer
	if err := s.WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteJSONL output differs across calls")
	}

	if _, err := ReadSamples(strings.NewReader(`{"type":"metrics","v":99}`)); err == nil {
		t.Fatal("ReadSamples accepted unknown schema version")
	}
	if _, err := ReadSamples(strings.NewReader(`{not json`)); err == nil {
		t.Fatal("ReadSamples accepted malformed line")
	}
}

func TestSamplerBindOnce(t *testing.T) {
	s := NewSampler(sim.Duration(1))
	if err := s.Bind(); err != nil {
		t.Fatalf("first Bind: %v", err)
	}
	if err := s.Bind(); err == nil {
		t.Fatal("second Bind succeeded; sampler must serve one instance")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	s := NewSampler(sim.Duration(1))
	s.Registry().Counter("x", func() int64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name did not panic")
		}
	}()
	s.Registry().Gauge("x", func() float64 { return 0 })
}
