// Package obs is the observability subsystem: simulated-clock
// operation spans, cause-attributed disk I/O, and cleaner activation
// records, aggregated into the quantities the paper reports.
//
// The paper's central results (Figures 3-5) are attribution claims —
// what fraction of disk time goes to log writes versus cleaning versus
// checkpoints, and what the write cost is at a given segment
// utilisation. A flat counter struct cannot answer those questions;
// this package records enough structure that disk busy time decomposes
// exactly into named causes and the cleaner's write cost can be
// recomputed per activation.
//
// A Recorder is attached through Config.Trace on either file system.
// All methods are safe on a nil *Recorder and cost nothing, so the
// instrumented code paths need no conditionals; everything in this
// package reads only simulated clocks, so attaching a recorder never
// changes the simulated timeline.
package obs

import (
	"sort"
	"sync"

	"lfs/internal/disk"
	"lfs/internal/sim"
)

// Span is one VFS operation: its name, target path, simulated start
// and end times, the CPU instructions it charged, and the error it
// returned ("" on success). Client is the issuing client's ID in
// multi-client runs (0 = unattributed single-client traffic); Shard
// is the executing shard's 1-based ID in sharded multi-log runs
// (0 = unsharded).
type Span struct {
	Op     string
	Path   string
	Start  sim.Time
	End    sim.Time
	CPU    int64
	Err    string
	Client int
	Shard  int
	// Phases decomposes the span's latency into ordered attributed
	// segments summing to Latency() exactly (the exactness
	// invariant); nil on spans recorded before phase attribution
	// existed (trace schema v1) or for zero-latency operations.
	Phases []Phase
}

// Latency returns the operation's simulated duration.
func (s Span) Latency() sim.Duration { return s.End.Sub(s.Start) }

// PhasesExact reports whether the span's phase list sums to its
// latency to the tick. Spans without phases (v1 traces) are vacuously
// exact only when their latency is zero.
func (s Span) PhasesExact() bool {
	var sum sim.Duration
	for _, p := range s.Phases {
		sum += p.Dur
	}
	return sum == s.Latency()
}

// CleanRecord is one cleaner activation on one victim segment.
type CleanRecord struct {
	// Time is when the segment's clean finished.
	Time sim.Time
	// Seg is the victim segment number.
	Seg int
	// Utilization is the victim's live fraction as estimated at
	// selection time (the x-axis of the paper's Figure 5).
	Utilization float64
	// BytesRead is the whole-segment read of phase one.
	BytesRead int64
	// BytesCopied is the live data rewritten to the log head.
	BytesCopied int64
	// BytesReclaimed is the net clean space generated: the segment
	// reclaimed minus the space its live data consumes after
	// relocation.
	BytesReclaimed int64
	// WriteCost is the paper's cleaning cost for this activation:
	// (read + copied + new)/new where new = read - copied, i.e.
	// 2/(1-u) at measured utilisation u. Zero when the segment was
	// entirely live (no new space generated; the cost is unbounded).
	WriteCost float64
}

// writeCost computes the paper's write-cost formula from measured
// bytes, returning 0 when no new space was generated.
func writeCost(read, copied int64) float64 {
	fresh := read - copied
	if fresh <= 0 {
		return 0
	}
	return float64(read+copied+fresh) / float64(fresh)
}

// Recorder collects spans, cause-tagged disk events, and cleaner
// records. It implements disk.Tracer. A Recorder may be shared by
// several file systems (e.g. an LFS and the FFS baseline on one
// timeline) and read while a workload runs, so it carries its own
// lock; all methods are safe on a nil receiver.
type Recorder struct {
	mu sync.Mutex
	// spans, events, and cleans are the recorded streams; all
	// guarded by mu.
	spans  []Span
	events []disk.Event
	cleans []CleanRecord
	// limit caps each stream's retained records (0 = unlimited).
	// Once a stream is full the oldest record is overwritten
	// ring-style — long runs keep the most recent window instead of
	// growing without bound — and the dropped counter increments.
	// Guarded by mu.
	limit int
	// spanHead, eventHead, and cleanHead are the ring start indexes,
	// meaningful once the stream has reached the limit. Guarded by mu.
	spanHead, eventHead, cleanHead int
	// droppedSpans, droppedEvents, and droppedCleans count records
	// evicted by the limit; surfaced in Aggregates. Guarded by mu.
	droppedSpans, droppedEvents, droppedCleans int64
}

// NewRecorder returns an empty recorder with no retention limit.
func NewRecorder() *Recorder { return &Recorder{} }

// NewRecorderLimit returns a recorder retaining at most n records per
// stream (spans, disk events, cleaner records). When a stream is
// full, appending evicts the oldest record and counts it in the
// Dropped fields of Aggregates — a 10^8-event run with tracing on
// keeps a bounded window instead of exhausting memory. n <= 0 means
// unlimited.
func NewRecorderLimit(n int) *Recorder {
	if n < 0 {
		n = 0
	}
	return &Recorder{limit: n}
}

// Enabled reports whether the recorder is non-nil, for callers that
// want to skip building a record at all.
func (r *Recorder) Enabled() bool { return r != nil }

// Record appends a disk event (disk.Tracer).
func (r *Recorder) Record(ev disk.Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.limit > 0 && len(r.events) >= r.limit {
		r.events[r.eventHead] = ev
		r.eventHead = (r.eventHead + 1) % r.limit
		r.droppedEvents++
	} else {
		r.events = append(r.events, ev)
	}
	r.mu.Unlock()
}

// Span appends an operation span.
func (r *Recorder) Span(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.limit > 0 && len(r.spans) >= r.limit {
		r.spans[r.spanHead] = s
		r.spanHead = (r.spanHead + 1) % r.limit
		r.droppedSpans++
	} else {
		r.spans = append(r.spans, s)
	}
	r.mu.Unlock()
}

// Clean appends a cleaner activation record, deriving its WriteCost
// from the measured byte counts.
func (r *Recorder) Clean(c CleanRecord) {
	if r == nil {
		return
	}
	c.WriteCost = writeCost(c.BytesRead, c.BytesCopied)
	r.mu.Lock()
	if r.limit > 0 && len(r.cleans) >= r.limit {
		r.cleans[r.cleanHead] = c
		r.cleanHead = (r.cleanHead + 1) % r.limit
		r.droppedCleans++
	} else {
		r.cleans = append(r.cleans, c)
	}
	r.mu.Unlock()
}

// spansLocked returns the retained spans oldest-first, unrolling the
// ring. Must be called with mu held.
func (r *Recorder) spansLocked() []Span {
	out := make([]Span, 0, len(r.spans))
	out = append(out, r.spans[r.spanHead:]...)
	return append(out, r.spans[:r.spanHead]...)
}

// eventsLocked returns the retained events oldest-first.
func (r *Recorder) eventsLocked() []disk.Event {
	out := make([]disk.Event, 0, len(r.events))
	out = append(out, r.events[r.eventHead:]...)
	return append(out, r.events[:r.eventHead]...)
}

// cleansLocked returns the retained cleaner records oldest-first.
func (r *Recorder) cleansLocked() []CleanRecord {
	out := make([]CleanRecord, 0, len(r.cleans))
	out = append(out, r.cleans[r.cleanHead:]...)
	return append(out, r.cleans[:r.cleanHead]...)
}

// Spans returns a copy of the recorded spans, oldest first.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spansLocked()
}

// Events returns a copy of the recorded disk events, oldest first.
func (r *Recorder) Events() []disk.Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eventsLocked()
}

// Cleans returns a copy of the recorded cleaner activations, oldest
// first.
func (r *Recorder) Cleans() []CleanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cleansLocked()
}

// Dropped returns the number of spans, events, and cleaner records
// evicted by the retention limit so far.
func (r *Recorder) Dropped() (spans, events, cleans int64) {
	if r == nil {
		return 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.droppedSpans, r.droppedEvents, r.droppedCleans
}

// Reset discards everything recorded so far, including the dropped
// counters; the retention limit is kept.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans, r.events, r.cleans = nil, nil, nil
	r.spanHead, r.eventHead, r.cleanHead = 0, 0, 0
	r.droppedSpans, r.droppedEvents, r.droppedCleans = 0, 0, 0
	r.mu.Unlock()
}

// OpStats aggregates the spans of one operation type.
type OpStats struct {
	Op      string
	Count   int64
	Errors  int64
	CPU     int64
	Total   sim.Duration
	Min     sim.Duration
	Max     sim.Duration
	Latency Histogram
	// Phase sums the op's span latency by phase kind. For spans
	// carrying phase lists the kinds sum to the span's latency
	// exactly, so summing across spans preserves the invariant:
	// the Phase totals of an op sum to Total minus the latency of
	// phase-less (v1) spans.
	Phase [NumPhaseKinds]sim.Duration
}

// Mean returns the average latency.
func (o OpStats) Mean() sim.Duration {
	if o.Count == 0 {
		return 0
	}
	return o.Total / sim.Duration(o.Count)
}

// CauseBusy is the disk time attributed to one I/O cause.
type CauseBusy struct {
	Cause    disk.IOCause
	Requests int64
	Sectors  int64
	Busy     sim.Duration
}

// CleanStats aggregates the cleaner activation records.
type CleanStats struct {
	Activations    int64
	BytesRead      int64
	BytesCopied    int64
	BytesReclaimed int64
	// WriteCost is the aggregate cleaning cost over all activations:
	// 2*read/(read-copied). Because each record carries measured byte
	// counts, this equals the value derived from core.Stats.
	WriteCost float64
	// Utilization is the distribution of victim utilisation at clean
	// time (Figure 5's x-axis).
	Utilization Histogram
}

// Aggregates condenses a recorder's contents into the report
// quantities: per-op latency statistics, the disk busy-time
// decomposition by cause, and the cleaner cost summary.
type Aggregates struct {
	Ops      []OpStats
	IO       []CauseBusy
	DiskBusy sim.Duration
	Clean    CleanStats
	// DroppedSpans, DroppedEvents, and DroppedCleans count records a
	// retention limit (NewRecorderLimit) evicted before aggregation:
	// non-zero values mean the figures below describe a recent window
	// of the run, not all of it.
	DroppedSpans  int64
	DroppedEvents int64
	DroppedCleans int64
}

// Aggregates computes aggregates over everything recorded so far.
func (r *Recorder) Aggregates() *Aggregates {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	agg := aggregate(r.spansLocked(), r.eventsLocked(), r.cleansLocked())
	agg.DroppedSpans = r.droppedSpans
	agg.DroppedEvents = r.droppedEvents
	agg.DroppedCleans = r.droppedCleans
	return agg
}

// aggregate builds an Aggregates from raw records; lfstrace reuses it
// on records read back from a JSONL file.
func aggregate(spans []Span, events []disk.Event, cleans []CleanRecord) *Aggregates {
	agg := &Aggregates{}

	byOp := make(map[string]*OpStats)
	for _, s := range spans {
		o := byOp[s.Op]
		if o == nil {
			o = &OpStats{Op: s.Op, Latency: NewLatencyHistogram()}
			byOp[s.Op] = o
		}
		lat := s.Latency()
		o.Count++
		if s.Err != "" {
			o.Errors++
		}
		o.CPU += s.CPU
		o.Total += lat
		if o.Count == 1 || lat < o.Min {
			o.Min = lat
		}
		if lat > o.Max {
			o.Max = lat
		}
		o.Latency.Observe(lat.Seconds())
		for _, p := range s.Phases {
			if p.Kind < NumPhaseKinds {
				o.Phase[p.Kind] += p.Dur
			}
		}
	}
	for _, o := range byOp {
		agg.Ops = append(agg.Ops, *o)
	}
	sort.Slice(agg.Ops, func(i, j int) bool { return agg.Ops[i].Op < agg.Ops[j].Op })

	var byCause [disk.NumCauses]CauseBusy
	for _, ev := range events {
		c := ev.Cause
		if c >= disk.NumCauses {
			c = disk.CauseOther
		}
		byCause[c].Requests++
		byCause[c].Sectors += int64(ev.Sectors)
		byCause[c].Busy += ev.Service
		agg.DiskBusy += ev.Service
	}
	for c := disk.IOCause(0); c < disk.NumCauses; c++ {
		if byCause[c].Requests == 0 {
			continue
		}
		byCause[c].Cause = c
		agg.IO = append(agg.IO, byCause[c])
	}

	agg.Clean.Utilization = NewUtilizationHistogram()
	for _, c := range cleans {
		agg.Clean.Activations++
		agg.Clean.BytesRead += c.BytesRead
		agg.Clean.BytesCopied += c.BytesCopied
		agg.Clean.BytesReclaimed += c.BytesReclaimed
		agg.Clean.Utilization.Observe(c.Utilization)
	}
	agg.Clean.WriteCost = writeCost(agg.Clean.BytesRead, agg.Clean.BytesCopied)
	return agg
}

// AttributedBusy returns the disk time carrying a named cause (not
// CauseOther) and the total, over the aggregated events.
func (a *Aggregates) AttributedBusy() (named, total sim.Duration) {
	for _, io := range a.IO {
		if io.Cause != disk.CauseOther {
			named += io.Busy
		}
	}
	return named, a.DiskBusy
}
