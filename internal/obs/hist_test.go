package obs

import (
	"math"
	"strings"
	"testing"
)

// Regression: NaN compares false against every upper bound, so before
// the NonFinite counter it silently landed in the unbounded top
// bucket and inflated tail latency.
func TestHistogramObserveNonFinite(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(5e-4)
	if got := h.Total(); got != 1 {
		t.Fatalf("Total() = %d after 3 non-finite + 1 finite observations, want 1", got)
	}
	if top := h.Counts[len(h.Counts)-1]; top != 0 {
		t.Fatalf("top bucket holds %d observations, want 0 (NaN/Inf must not land there)", top)
	}
	if h.NonFinite != 3 {
		t.Fatalf("NonFinite = %d, want 3", h.NonFinite)
	}
}

// Regression: Merge only compared bucket counts, so two same-length
// histograms over different bounds merged into a meaningless sum.
func TestHistogramMergeRejectsDifferentBounds(t *testing.T) {
	a := NewHistogram(1, 2, 3)
	b := NewHistogram(1, 2.5, 3)
	b.Observe(2.2)
	if err := a.Merge(b); err == nil {
		t.Fatal("Merge accepted histograms with different bounds")
	} else if !strings.Contains(err.Error(), "different bounds") {
		t.Fatalf("Merge error %q does not mention the bound mismatch", err)
	}
	if a.Total() != 0 {
		t.Fatalf("failed Merge still added counts: Total() = %d", a.Total())
	}

	c := NewHistogram(1, 2, 3)
	c.Observe(2.2)
	c.Observe(math.NaN())
	if err := a.Merge(c); err != nil {
		t.Fatalf("Merge of identical bounds failed: %v", err)
	}
	if a.Total() != 1 || a.NonFinite != 1 {
		t.Fatalf("after Merge: Total()=%d NonFinite=%d, want 1 and 1", a.Total(), a.NonFinite)
	}
}

func TestHistogramQuantile(t *testing.T) {
	// 100 observations spread uniformly over [0,1) in the utilization
	// histogram: ten per linear bucket, so the quantile function is
	// the identity (up to bucket interpolation).
	u := NewUtilizationHistogram()
	for i := 0; i < 100; i++ {
		u.Observe((float64(i) + 0.5) / 100)
	}
	for _, tc := range []struct{ p, want float64 }{
		{0.0, 0.0},
		{0.05, 0.05},
		{0.5, 0.5},
		{0.85, 0.85},
	} {
		if got := u.Quantile(tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("uniform Quantile(%g) = %g, want %g", tc.p, got, tc.want)
		}
	}
	// p>=0.9 lands in the unbounded top bucket [0.9, ∞), which
	// returns its lower bound — a deliberate underestimate.
	if got := u.Quantile(0.95); got != 0.9 {
		t.Errorf("uniform Quantile(0.95) = %g, want 0.9 (top-bucket lower bound)", got)
	}
	if got := u.Quantile(1); got != 0.9 {
		t.Errorf("uniform Quantile(1) = %g, want 0.9 (top-bucket lower bound)", got)
	}

	// A known skewed distribution in the latency histogram: 90 fast
	// ops in [1e-5, 1e-4) and 10 slow ones in [1e-2, 3e-2).
	l := NewLatencyHistogram()
	for i := 0; i < 90; i++ {
		l.Observe(5e-5)
	}
	for i := 0; i < 10; i++ {
		l.Observe(2e-2)
	}
	// p50: rank 50 of 90 in [1e-5,1e-4): 1e-5 + 9e-5*(50/90).
	if got, want := l.Quantile(0.5), 1e-5+9e-5*(50.0/90.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("skewed Quantile(0.5) = %g, want %g", got, want)
	}
	// p95: rank 95, 5th of the 10 slow ops: 1e-2 + 2e-2*(5/10).
	if got, want := l.Quantile(0.95), 1e-2+2e-2*0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("skewed Quantile(0.95) = %g, want %g", got, want)
	}
	// p99: rank 99: 1e-2 + 2e-2*(9/10).
	if got, want := l.Quantile(0.99), 1e-2+2e-2*0.9; math.Abs(got-want) > 1e-12 {
		t.Errorf("skewed Quantile(0.99) = %g, want %g", got, want)
	}

	// Degenerate cases.
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %g, want 0", got)
	}
	one := NewHistogram(1, 2)
	one.Observe(1.5)
	if got := one.Quantile(-3); got != 1 {
		t.Errorf("clamped Quantile(-3) = %g, want 1 (bucket lower bound)", got)
	}
	if got := one.Quantile(7); got != 2 {
		t.Errorf("clamped Quantile(7) = %g, want 2 (bucket upper bound)", got)
	}
}
