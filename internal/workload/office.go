package workload

import (
	"fmt"
	"math/rand"
)

// OfficeOpts models the office/engineering environment the paper
// designs for (§3), following the characterisation of the BSD
// trace-driven analysis it cites: "a large number of relatively small
// files (less than 8 kilobytes) whose contents are accessed
// sequentially and in their entirety. The average file life time is
// short ... before it is overwritten or deleted."
type OfficeOpts struct {
	// Users is the number of user directories.
	Users int
	// Ops is the total number of trace events to generate.
	Ops int
	// TargetFiles is the steady-state file population.
	TargetFiles int
	// MeanLifetimeOps is the mean file lifetime, in events.
	MeanLifetimeOps int
	// ReadFraction of events are whole-file reads; of the rest,
	// OverwriteFraction rewrite an existing file in place and the
	// remainder create new files.
	ReadFraction      float64
	OverwriteFraction float64
	// HotFraction of files receive HotBias of the accesses.
	HotFraction float64
	HotBias     float64
	// Seed drives everything.
	Seed int64
}

// DefaultOffice returns a workload shaped like the paper's
// environment description.
func DefaultOffice() OfficeOpts {
	return OfficeOpts{
		Users:             8,
		Ops:               20000,
		TargetFiles:       2500,
		MeanLifetimeOps:   4000,
		ReadFraction:      0.45,
		OverwriteFraction: 0.25,
		HotFraction:       0.2,
		HotBias:           0.8,
		Seed:              31,
	}
}

// OfficeResult summarises a trace run.
type OfficeResult struct {
	Creates, Deletes, Reads, Overwrites int
	BytesWritten, BytesRead             int64
	// Elapsed is the simulated duration of the run.
	Elapsed Phase
}

// officeFile is one live file in the trace state.
type officeFile struct {
	path  string
	size  int
	dieAt int
}

// officeFileSize draws a file size from a small-file-heavy
// distribution: ~80% at or below 8 KB (the paper's characterisation),
// with a tail of larger files.
func officeFileSize(rng *rand.Rand) int {
	switch x := rng.Float64(); {
	case x < 0.25:
		return 512 + rng.Intn(512)
	case x < 0.55:
		return 1024 + rng.Intn(3072)
	case x < 0.80:
		return 4096 + rng.Intn(4096)
	case x < 0.95:
		return 8192 + rng.Intn(56<<10)
	default:
		return 64<<10 + rng.Intn(192<<10)
	}
}

// Office replays a synthetic office/engineering trace against the
// file system: short-lived small files created, read whole, sometimes
// overwritten, and deleted when their lifetime expires.
func Office(sys System, opts OfficeOpts) (OfficeResult, error) {
	var res OfficeResult
	if opts.Users <= 0 || opts.Ops <= 0 || opts.TargetFiles <= 0 || opts.MeanLifetimeOps <= 0 {
		return res, fmt.Errorf("workload: bad office opts %+v", opts)
	}
	rng := newRNG(opts.Seed)
	for u := 0; u < opts.Users; u++ {
		if err := sys.Mkdir(fmt.Sprintf("/u%d", u)); err != nil {
			return res, err
		}
	}
	var live []officeFile
	payload := make([]byte, 256<<10)
	fill(payload, opts.Seed)
	buf := make([]byte, 256<<10)
	nextID := 0
	start := sys.Clock().Now()

	pick := func() int {
		// Hot files cluster at the end of the slice (most recently
		// created), matching temporal locality.
		//lfslint:allow floataccum hot-set sizing is recomputed from integers on every pick; not accounting state
		hot := int(float64(len(live)) * opts.HotFraction)
		if hot < 1 {
			hot = 1
		}
		if rng.Float64() < opts.HotBias {
			return len(live) - 1 - rng.Intn(hot)
		}
		return rng.Intn(len(live))
	}

	createOne := func(op int) error {
		p := fmt.Sprintf("/u%d/f%06d", rng.Intn(opts.Users), nextID)
		nextID++
		size := officeFileSize(rng)
		if err := sys.Create(p); err != nil {
			return err
		}
		if err := sys.Write(p, 0, payload[:size]); err != nil {
			return err
		}
		// Geometric-ish lifetime around the mean.
		life := 1 + rng.Intn(2*opts.MeanLifetimeOps)
		live = append(live, officeFile{path: p, size: size, dieAt: op + life})
		res.Creates++
		res.BytesWritten += int64(size)
		return nil
	}

	for op := 0; op < opts.Ops; op++ {
		// Expire due files (scan lazily: check a few random slots).
		for k := 0; k < 3 && len(live) > 0; k++ {
			i := rng.Intn(len(live))
			if live[i].dieAt <= op {
				if err := sys.Remove(live[i].path); err != nil {
					return res, fmt.Errorf("expire %s: %w", live[i].path, err)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				res.Deletes++
			}
		}
		switch x := rng.Float64(); {
		case len(live) < opts.TargetFiles/4 || len(live) == 0:
			if err := createOne(op); err != nil {
				return res, err
			}
		case x < opts.ReadFraction:
			f := live[pick()]
			n, err := sys.Read(f.path, 0, buf[:f.size])
			if err != nil {
				return res, fmt.Errorf("read %s: %w", f.path, err)
			}
			res.Reads++
			res.BytesRead += int64(n)
		case x < opts.ReadFraction+opts.OverwriteFraction:
			i := pick()
			f := live[i]
			if err := sys.Write(f.path, 0, payload[:f.size]); err != nil {
				return res, fmt.Errorf("overwrite %s: %w", f.path, err)
			}
			res.Overwrites++
			res.BytesWritten += int64(f.size)
		default:
			if len(live) >= opts.TargetFiles {
				// At population target: replace instead of grow.
				i := pick()
				if err := sys.Remove(live[i].path); err != nil {
					return res, err
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				res.Deletes++
			}
			if err := createOne(op); err != nil {
				return res, err
			}
		}
	}
	if err := sys.Sync(); err != nil {
		return res, err
	}
	res.Elapsed = Phase{
		Name:     "office trace",
		Ops:      opts.Ops,
		Bytes:    res.BytesWritten + res.BytesRead,
		Duration: sys.Clock().Now().Sub(start),
	}
	return res, nil
}
