package workload

import "fmt"

// LargeFileOpts parameterises the Figure 4 workload.
type LargeFileOpts struct {
	// FileSize is the file size (100 MB in the paper).
	FileSize int64
	// RequestSize is the I/O request size (8 KB in the paper).
	RequestSize int
	// Path is the file's path.
	Path string
	// Seed drives the random phases.
	Seed int64
}

// DefaultLargeFile returns the paper's 100 MB / 8 KB configuration.
func DefaultLargeFile() LargeFileOpts {
	return LargeFileOpts{FileSize: 100 << 20, RequestSize: 8192, Path: "/bigfile", Seed: 7}
}

// LargeFileResult holds the five measured phases of Figure 4.
type LargeFileResult struct {
	SeqWrite  Phase
	SeqRead   Phase
	RandWrite Phase
	RandRead  Phase
	SeqReread Phase
}

// Phases returns the results in figure order.
func (r LargeFileResult) Phases() []Phase {
	return []Phase{r.SeqWrite, r.SeqRead, r.RandWrite, r.RandRead, r.SeqReread}
}

// LargeFile runs the large-file test of §5.2: write a FileSize file
// sequentially, read it sequentially, write FileSize bytes randomly
// (with replacement — the paper notes the random writes "were not
// unique"), read FileSize bytes randomly, and finally reread the file
// sequentially. Rates are in KB per simulated second. The cache is
// flushed between phases so each phase measures disk behaviour.
func LargeFile(sys System, opts LargeFileOpts) (LargeFileResult, error) {
	var res LargeFileResult
	if opts.FileSize <= 0 || opts.RequestSize <= 0 || opts.FileSize%int64(opts.RequestSize) != 0 {
		return res, fmt.Errorf("workload: bad large-file opts %+v", opts)
	}
	if err := sys.Create(opts.Path); err != nil {
		return res, err
	}
	nReq := int(opts.FileSize / int64(opts.RequestSize))
	buf := make([]byte, opts.RequestSize)
	fill(buf, 99)
	rng := newRNG(opts.Seed)

	var err error
	res.SeqWrite, err = measure(sys, "seq write", nReq, opts.FileSize, func() error {
		for i := 0; i < nReq; i++ {
			if err := sys.Write(opts.Path, int64(i)*int64(opts.RequestSize), buf); err != nil {
				return err
			}
		}
		return sys.Sync()
	})
	if err != nil {
		return res, err
	}

	sys.DropCaches()
	res.SeqRead, err = measure(sys, "seq read", nReq, opts.FileSize, func() error {
		for i := 0; i < nReq; i++ {
			if _, err := sys.Read(opts.Path, int64(i)*int64(opts.RequestSize), buf); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}

	sys.DropCaches()
	res.RandWrite, err = measure(sys, "rand write", nReq, opts.FileSize, func() error {
		for i := 0; i < nReq; i++ {
			off := int64(rng.Intn(nReq)) * int64(opts.RequestSize)
			if err := sys.Write(opts.Path, off, buf); err != nil {
				return err
			}
		}
		return sys.Sync()
	})
	if err != nil {
		return res, err
	}

	sys.DropCaches()
	res.RandRead, err = measure(sys, "rand read", nReq, opts.FileSize, func() error {
		for i := 0; i < nReq; i++ {
			off := int64(rng.Intn(nReq)) * int64(opts.RequestSize)
			if _, err := sys.Read(opts.Path, off, buf); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}

	sys.DropCaches()
	res.SeqReread, err = measure(sys, "seq reread", nReq, opts.FileSize, func() error {
		for i := 0; i < nReq; i++ {
			if _, err := sys.Read(opts.Path, int64(i)*int64(opts.RequestSize), buf); err != nil {
				return err
			}
		}
		return nil
	})
	return res, err
}
