package workload_test

import (
	"testing"

	"lfs/internal/core"
	"lfs/internal/disk"
	"lfs/internal/ffs"
	"lfs/internal/sim"
	"lfs/internal/vfs"
	"lfs/internal/workload"
)

func newLFS(t *testing.T, capacity int64) workload.System {
	t.Helper()
	d := disk.NewMem(capacity, sim.NewClock())
	cfg := core.DefaultConfig()
	cfg.MaxInodes = 8192
	if err := core.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := core.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func newFFS(t *testing.T, capacity int64) workload.System {
	t.Helper()
	d := disk.NewMem(capacity, sim.NewClock())
	cfg := ffs.DefaultConfig()
	if err := ffs.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := ffs.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestSmallFileRunsOnBothSystems(t *testing.T) {
	for _, tc := range []struct {
		name string
		sys  workload.System
	}{
		{"LFS", newLFS(t, 32<<20)},
		{"FFS", newFFS(t, 32<<20)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := workload.SmallFile(tc.sys, workload.SmallFileOpts{
				NumFiles: 200, FileSize: 1024, Dir: "/s", SyncBetweenPhases: true, Seed: 42,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []workload.Phase{res.Create, res.Read, res.Delete} {
				if p.Ops != 200 {
					t.Errorf("%s phase ops = %d", p.Name, p.Ops)
				}
				if p.Duration <= 0 {
					t.Errorf("%s phase took no simulated time", p.Name)
				}
				if p.OpsPerSec() <= 0 {
					t.Errorf("%s phase rate = %v", p.Name, p.OpsPerSec())
				}
				if p.String() == "" {
					t.Error("empty phase string")
				}
			}
		})
	}
}

func TestSmallFileValidation(t *testing.T) {
	sys := newLFS(t, 16<<20)
	if _, err := workload.SmallFile(sys, workload.SmallFileOpts{}); err == nil {
		t.Fatal("zero opts accepted")
	}
}

func TestDefaultOptsMatchPaper(t *testing.T) {
	o1 := workload.DefaultSmallFile1K()
	if o1.NumFiles != 10000 || o1.FileSize != 1024 {
		t.Errorf("1K opts = %+v", o1)
	}
	o10 := workload.DefaultSmallFile10K()
	if o10.NumFiles != 1000 || o10.FileSize != 10240 {
		t.Errorf("10K opts = %+v", o10)
	}
	// Both configurations total ~10 MB, as the paper specifies
	// ("creating 10 megabytes of small files").
	for _, total := range []int64{
		int64(o1.NumFiles) * int64(o1.FileSize),
		int64(o10.NumFiles) * int64(o10.FileSize),
	} {
		if total < 9<<20 || total > 11<<20 {
			t.Errorf("configuration totals %d bytes, want ~10MB", total)
		}
	}
	lf := workload.DefaultLargeFile()
	if lf.FileSize != 100<<20 || lf.RequestSize != 8192 {
		t.Errorf("large-file opts = %+v", lf)
	}
}

func TestLargeFileRuns(t *testing.T) {
	sys := newLFS(t, 48<<20)
	res, err := workload.LargeFile(sys, workload.LargeFileOpts{
		FileSize: 8 << 20, RequestSize: 8192, Path: "/big", Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	phases := res.Phases()
	if len(phases) != 5 {
		t.Fatalf("%d phases", len(phases))
	}
	names := []string{"seq write", "seq read", "rand write", "rand read", "seq reread"}
	for i, p := range phases {
		if p.Name != names[i] {
			t.Errorf("phase %d = %q, want %q", i, p.Name, names[i])
		}
		if p.KBPerSec() <= 0 {
			t.Errorf("phase %s rate 0", p.Name)
		}
		if p.Bytes != 8<<20 {
			t.Errorf("phase %s moved %d bytes", p.Name, p.Bytes)
		}
	}
}

func TestLargeFileValidation(t *testing.T) {
	sys := newLFS(t, 16<<20)
	if _, err := workload.LargeFile(sys, workload.LargeFileOpts{FileSize: 100, RequestSize: 8192, Path: "/x"}); err == nil {
		t.Fatal("non-multiple file size accepted")
	}
}

func TestFragmentProducesTargetUtilization(t *testing.T) {
	sys := newLFS(t, 32<<20)
	lfs := sys.(*core.FS)
	if err := workload.Fragment(sys, workload.FragmentOpts{
		NumFiles: 2000, FileSize: 1024, KeepFraction: 0.5, Dir: "/frag", Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// Roughly half the files should remain.
	entries, err := sys.ReadDir("/frag")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(entries); n < 900 || n > 1100 {
		t.Fatalf("%d of 2000 files survived, want ~1000", n)
	}
	// Live bytes should be around half the written data.
	if live := lfs.LiveBytes(); live <= 0 {
		t.Fatal("no live bytes recorded")
	}
}

func TestFragmentExtremes(t *testing.T) {
	for _, keep := range []float64{0, 1} {
		sys := newLFS(t, 32<<20)
		if err := workload.Fragment(sys, workload.FragmentOpts{
			NumFiles: 300, FileSize: 1024, KeepFraction: keep, Dir: "/frag", Seed: 1,
		}); err != nil {
			t.Fatalf("keep=%v: %v", keep, err)
		}
		entries, err := sys.ReadDir("/frag")
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if keep == 1 {
			want = 300
		}
		if len(entries) != want {
			t.Fatalf("keep=%v: %d files survived, want %d", keep, len(entries), want)
		}
	}
}

func TestPhaseMath(t *testing.T) {
	p := workload.Phase{Name: "x", Ops: 100, Bytes: 1 << 20, Duration: 2 * sim.Second}
	if p.OpsPerSec() != 50 {
		t.Errorf("OpsPerSec = %v", p.OpsPerSec())
	}
	if p.KBPerSec() != 512 {
		t.Errorf("KBPerSec = %v", p.KBPerSec())
	}
	zero := workload.Phase{}
	if zero.OpsPerSec() != 0 || zero.KBPerSec() != 0 {
		t.Error("zero-duration phase produced non-zero rates")
	}
}

func TestOfficeTraceRuns(t *testing.T) {
	sys := newLFS(t, 64<<20)
	opts := workload.DefaultOffice()
	opts.Ops = 3000
	opts.TargetFiles = 800
	opts.MeanLifetimeOps = 1000
	res, err := workload.Office(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Creates == 0 || res.Reads == 0 || res.Overwrites == 0 || res.Deletes == 0 {
		t.Fatalf("trace lacks op diversity: %+v", res)
	}
	if res.Elapsed.Duration <= 0 {
		t.Fatal("trace took no simulated time")
	}
	// Population stays bounded near the target.
	bytes, files, _, err := countTree(sys)
	if err != nil {
		t.Fatal(err)
	}
	if files == 0 || files > opts.TargetFiles*2 {
		t.Fatalf("final population %d, target %d", files, opts.TargetFiles)
	}
	if bytes == 0 {
		t.Fatal("no live bytes at end of trace")
	}
}

func TestOfficeTraceDeterministic(t *testing.T) {
	run := func() workload.OfficeResult {
		sys := newLFS(t, 32<<20)
		opts := workload.DefaultOffice()
		opts.Ops = 1500
		opts.TargetFiles = 400
		opts.MeanLifetimeOps = 500
		res, err := workload.Office(sys, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different traces:\n%+v\n%+v", a, b)
	}
}

func TestOfficeValidation(t *testing.T) {
	sys := newLFS(t, 16<<20)
	if _, err := workload.Office(sys, workload.OfficeOpts{}); err == nil {
		t.Fatal("zero office opts accepted")
	}
}

// countTree tallies the file population via the vfs walk helper.
func countTree(sys workload.System) (int64, int, int, error) {
	return vfs.TreeSize(sys, "/")
}
