package workload

import (
	"fmt"
)

// SmallFileOpts parameterises the Figure 3 workload.
type SmallFileOpts struct {
	// NumFiles is how many files to create (10000 in the paper for
	// 1 KB files, 1000 for 10 KB files — 10 MB of data either way).
	NumFiles int
	// FileSize is the per-file payload (1 KB or 10 KB).
	FileSize int
	// Dir is the directory the files go in; created if missing.
	Dir string
	// SyncBetweenPhases forces buffered writes out before the
	// timer stops, so the create phase pays for its disk traffic.
	SyncBetweenPhases bool
	// Seed drives the deterministic payload pattern, so reruns are
	// bit-identical and configs can vary the data independently.
	Seed int64
}

// DefaultSmallFile1K returns the paper's 10000 × 1 KB configuration.
func DefaultSmallFile1K() SmallFileOpts {
	return SmallFileOpts{NumFiles: 10000, FileSize: 1024, Dir: "/small1k", SyncBetweenPhases: true, Seed: 42}
}

// DefaultSmallFile10K returns the paper's 1000 × 10 KB configuration.
func DefaultSmallFile10K() SmallFileOpts {
	return SmallFileOpts{NumFiles: 1000, FileSize: 10240, Dir: "/small10k", SyncBetweenPhases: true, Seed: 42}
}

// SmallFileResult holds the three measured phases of Figure 3.
type SmallFileResult struct {
	Create Phase
	Read   Phase
	Delete Phase
}

// SmallFile runs the small-file test of §5.1: create NumFiles files of
// FileSize bytes, flush the file cache, read them all in creation
// order, then delete them all. Results are files per second per
// phase.
func SmallFile(sys System, opts SmallFileOpts) (SmallFileResult, error) {
	var res SmallFileResult
	if opts.NumFiles <= 0 || opts.FileSize <= 0 {
		return res, fmt.Errorf("workload: bad small-file opts %+v", opts)
	}
	if err := sys.Mkdir(opts.Dir); err != nil {
		return res, err
	}
	name := func(i int) string { return fmt.Sprintf("%s/f%06d", opts.Dir, i) }
	payload := make([]byte, opts.FileSize)
	fill(payload, opts.Seed)
	totalBytes := int64(opts.NumFiles) * int64(opts.FileSize)

	var err error
	res.Create, err = measure(sys, "create", opts.NumFiles, totalBytes, func() error {
		for i := 0; i < opts.NumFiles; i++ {
			if err := sys.Create(name(i)); err != nil {
				return err
			}
			if err := sys.Write(name(i), 0, payload); err != nil {
				return err
			}
		}
		if opts.SyncBetweenPhases {
			return sys.Sync()
		}
		return nil
	})
	if err != nil {
		return res, err
	}

	// "Following the creation, the file cache was flushed and all
	// the files were read (in the same order as they were
	// created)."
	sys.DropCaches()
	buf := make([]byte, opts.FileSize)
	res.Read, err = measure(sys, "read", opts.NumFiles, totalBytes, func() error {
		for i := 0; i < opts.NumFiles; i++ {
			n, err := sys.Read(name(i), 0, buf)
			if err != nil {
				return err
			}
			if n != opts.FileSize {
				return fmt.Errorf("short read of %s: %d", name(i), n)
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}

	res.Delete, err = measure(sys, "delete", opts.NumFiles, totalBytes, func() error {
		for i := 0; i < opts.NumFiles; i++ {
			if err := sys.Remove(name(i)); err != nil {
				return err
			}
		}
		if opts.SyncBetweenPhases {
			return sys.Sync()
		}
		return nil
	})
	return res, err
}
