package workload

import (
	"fmt"
	"math/rand"

	"lfs/internal/sim"
)

// ZipfOpts parameterises the skewed-overwrite load behind the
// cleaning-curve experiment: a fixed file population is created once,
// then overwritten with Zipf-distributed file choice — rank 0 is the
// hottest file, the tail is nearly-cold data the cleaner must learn to
// leave alone. This is the locality pattern for which the authors'
// follow-up work introduced cost-benefit selection and age-sorted
// write-out; a uniform pattern (s→1, v large) makes every policy look
// the same.
type ZipfOpts struct {
	// Files is the population size; each file is one FileSize write.
	Files int
	// FileSize is the per-file payload.
	FileSize int
	// Overwrites is the number of whole-file overwrites issued.
	Overwrites int
	// S and V shape the Zipf law (P(rank) ∝ 1/(V+rank)^S, S > 1,
	// V ≥ 1); larger S skews harder toward rank 0.
	S, V float64
	// SyncEvery issues a Sync after every n overwrites (0 disables):
	// it bounds dirty-cache residency so overwrite traffic actually
	// reaches the log instead of coalescing in memory.
	SyncEvery int
	// Dir is the working directory.
	Dir string
	// Seed drives the file choice.
	Seed int64
}

// DefaultZipf returns the 80/20-ish skew used by the cleaning curve.
func DefaultZipf() ZipfOpts {
	return ZipfOpts{
		Files:      4000,
		FileSize:   4096,
		Overwrites: 12000,
		S:          1.1,
		V:          8,
		SyncEvery:  64,
		Dir:        "/zipf",
		Seed:       23,
	}
}

// ZipfResult summarises the run.
type ZipfResult struct {
	// Creates and Overwrites count the operations issued.
	Creates, Overwrites int
	// HottestShare is the fraction of overwrites that hit the top 1%
	// of files (by rank), a quick skew sanity check.
	HottestShare float64
	// Elapsed is the simulated duration of the overwrite phase only
	// (creation is setup, not the measured churn).
	Elapsed sim.Duration
}

// ZipfOverwrite creates the population, syncs it, then issues the
// skewed overwrites. Same-seed runs are byte-identical: the only
// randomness is the explicitly seeded Zipf draw.
func ZipfOverwrite(sys System, opts ZipfOpts) (ZipfResult, error) {
	var res ZipfResult
	if opts.Files <= 0 || opts.FileSize <= 0 || opts.Overwrites < 0 {
		return res, fmt.Errorf("workload: bad zipf opts %+v", opts)
	}
	if opts.S <= 1 || opts.V < 1 {
		return res, fmt.Errorf("workload: zipf law needs S > 1, V >= 1; got S=%v V=%v", opts.S, opts.V)
	}
	if err := sys.Mkdir(opts.Dir); err != nil {
		return res, err
	}
	name := func(i int) string { return fmt.Sprintf("%s/f%06d", opts.Dir, i) }
	payload := make([]byte, opts.FileSize)
	fill(payload, opts.Seed)
	for i := 0; i < opts.Files; i++ {
		if err := sys.Create(name(i)); err != nil {
			return res, err
		}
		if err := sys.Write(name(i), 0, payload); err != nil {
			return res, err
		}
		res.Creates++
	}
	if err := sys.Sync(); err != nil {
		return res, err
	}

	rng := newRNG(opts.Seed)
	zipf := rand.NewZipf(rng, opts.S, opts.V, uint64(opts.Files-1))
	hotCut := opts.Files / 100
	if hotCut < 1 {
		hotCut = 1
	}
	hotHits := 0
	start := sys.Clock().Now()
	for i := 0; i < opts.Overwrites; i++ {
		rank := int(zipf.Uint64())
		if rank < hotCut {
			hotHits++
		}
		// Vary the payload so overwrites are real new data, not
		// dedupable repeats.
		payload[0] = byte(i)
		payload[1] = byte(i >> 8)
		if err := sys.Write(name(rank), 0, payload); err != nil {
			return res, err
		}
		res.Overwrites++
		if opts.SyncEvery > 0 && (i+1)%opts.SyncEvery == 0 {
			if err := sys.Sync(); err != nil {
				return res, err
			}
		}
	}
	if err := sys.Sync(); err != nil {
		return res, err
	}
	res.Elapsed = sys.Clock().Now().Sub(start)
	if res.Overwrites > 0 {
		res.HottestShare = float64(hotHits) / float64(res.Overwrites)
	}
	return res, nil
}
