package workload_test

import (
	"testing"

	"lfs/internal/workload"
)

// TestZipfOverwriteSkewAndDeterminism: the Zipf load must actually
// skew (the top 1% of files receives far more than 1% of the
// overwrites) and same-seed runs must land on the identical simulated
// timeline — the cleaning curve's reproducibility rests on both.
func TestZipfOverwriteSkewAndDeterminism(t *testing.T) {
	opts := workload.ZipfOpts{
		Files: 400, FileSize: 4096, Overwrites: 1200,
		S: 1.1, V: 8, SyncEvery: 64, Dir: "/z", Seed: 23,
	}
	run := func() workload.ZipfResult {
		res, err := workload.ZipfOverwrite(newLFS(t, 32<<20), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	if a.Creates != opts.Files || a.Overwrites != opts.Overwrites {
		t.Fatalf("ops: %d creates, %d overwrites; want %d and %d",
			a.Creates, a.Overwrites, opts.Files, opts.Overwrites)
	}
	if a.HottestShare < 0.10 {
		t.Errorf("top 1%% of files got only %.1f%% of overwrites; the law is not skewed",
			100*a.HottestShare)
	}
	if a.Elapsed <= 0 {
		t.Error("overwrite phase took no simulated time")
	}
	b := run()
	if a != b {
		t.Errorf("same-seed runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestZipfOverwriteRejectsBadLaw: the Zipf law's domain is S > 1,
// V ≥ 1; out-of-domain parameters must fail, not panic inside
// math/rand.
func TestZipfOverwriteRejectsBadLaw(t *testing.T) {
	sys := newLFS(t, 16<<20)
	for _, o := range []workload.ZipfOpts{
		{Files: 10, FileSize: 1024, Overwrites: 1, S: 1.0, V: 8, Dir: "/a", Seed: 1},
		{Files: 10, FileSize: 1024, Overwrites: 1, S: 1.1, V: 0.5, Dir: "/b", Seed: 1},
		{Files: 0, FileSize: 1024, Overwrites: 1, S: 1.1, V: 8, Dir: "/c", Seed: 1},
	} {
		if _, err := workload.ZipfOverwrite(sys, o); err == nil {
			t.Errorf("opts %+v accepted", o)
		}
	}
}
