// Package workload implements the benchmark workloads of the paper's
// evaluation (§5): the small-file create/read/delete test behind
// Figure 3, the five-phase 100 MB large-file test behind Figure 4,
// and the fragmentation load (create many 1 KB files, delete a
// fraction) behind the cleaning-rate measurement of Figure 5.
//
// All rates are computed from simulated time, so results are
// deterministic and reflect the modelled 1990 hardware rather than
// the host machine.
package workload

import (
	"fmt"
	"math/rand"

	"lfs/internal/sim"
	"lfs/internal/vfs"
)

// System is a mounted file system under test: the vfs operations plus
// the instrumentation hooks both implementations provide.
type System interface {
	vfs.FileSystem
	// Clock returns the simulated clock measuring the run.
	Clock() *sim.Clock
	// DropCaches evicts clean cached data, the paper's
	// between-phase cache flush.
	DropCaches()
}

// Phase is one measured benchmark phase.
type Phase struct {
	// Name labels the phase ("create", "seq write", ...).
	Name string
	// Ops is the number of operations performed.
	Ops int
	// Bytes is the payload volume moved.
	Bytes int64
	// Duration is the simulated time the phase took.
	Duration sim.Duration
}

// OpsPerSec returns operations per simulated second.
func (p Phase) OpsPerSec() float64 {
	if p.Duration <= 0 {
		return 0
	}
	return float64(p.Ops) / p.Duration.Seconds()
}

// KBPerSec returns payload kilobytes per simulated second.
func (p Phase) KBPerSec() float64 {
	if p.Duration <= 0 {
		return 0
	}
	return float64(p.Bytes) / 1024 / p.Duration.Seconds()
}

// String formats the phase on one line.
func (p Phase) String() string {
	return fmt.Sprintf("%-12s %6d ops %8.1f ops/s %9.0f KB/s (%v)",
		p.Name, p.Ops, p.OpsPerSec(), p.KBPerSec(), p.Duration)
}

// measure runs fn and returns the phase record for it.
func measure(sys System, name string, ops int, bytes int64, fn func() error) (Phase, error) {
	start := sys.Clock().Now()
	if err := fn(); err != nil {
		return Phase{}, fmt.Errorf("workload %s: %w", name, err)
	}
	return Phase{Name: name, Ops: ops, Bytes: bytes, Duration: sys.Clock().Now().Sub(start)}, nil
}

// fill writes a deterministic pattern derived from seed into p.
func fill(p []byte, seed int64) {
	x := uint64(seed)*2654435761 + 1
	for i := range p {
		x = x*6364136223846793005 + 1442695040888963407
		p[i] = byte(x >> 56)
	}
}

// newRNG returns the deterministic RNG used by randomized phases.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
