package workload

import (
	"fmt"
)

// FragmentOpts parameterises the Figure 5 fragmentation load: many
// small files are created and a fixed fraction deleted, leaving every
// segment at roughly the same utilization.
type FragmentOpts struct {
	// NumFiles is how many 1-block files to create.
	NumFiles int
	// FileSize is the per-file payload (1 KB in the paper).
	FileSize int
	// KeepFraction is the fraction of files that survive; the
	// segments' utilization at cleaning time approximates it.
	KeepFraction float64
	// Dir is the working directory.
	Dir string
	// Seed drives the interleaving of deletions.
	Seed int64
}

// DefaultFragment returns a Figure 5 load at the given utilization.
func DefaultFragment(keep float64) FragmentOpts {
	return FragmentOpts{NumFiles: 4000, FileSize: 1024, KeepFraction: keep, Dir: "/frag", Seed: 5}
}

// Fragment creates the files, syncs, then deletes an evenly spread
// (1-KeepFraction) of them and syncs again. Deletions are spread
// uniformly across creation order so every segment ends up at about
// KeepFraction utilization — the paper's worst-case "all segments
// equally fragmented" setup.
func Fragment(sys System, opts FragmentOpts) error {
	if opts.NumFiles <= 0 || opts.FileSize <= 0 || opts.KeepFraction < 0 || opts.KeepFraction > 1 {
		return fmt.Errorf("workload: bad fragment opts %+v", opts)
	}
	if err := sys.Mkdir(opts.Dir); err != nil {
		return err
	}
	name := func(i int) string { return fmt.Sprintf("%s/f%06d", opts.Dir, i) }
	payload := make([]byte, opts.FileSize)
	fill(payload, opts.Seed)
	for i := 0; i < opts.NumFiles; i++ {
		if err := sys.Create(name(i)); err != nil {
			return err
		}
		if err := sys.Write(name(i), 0, payload); err != nil {
			return err
		}
	}
	if err := sys.Sync(); err != nil {
		return err
	}
	// Evenly spread deletions: keep file i iff its position in the
	// [0,1) unit interval falls below KeepFraction.
	acc := 0.0
	for i := 0; i < opts.NumFiles; i++ {
		acc += opts.KeepFraction
		if acc >= 1.0 {
			acc -= 1.0
			continue // keep
		}
		if err := sys.Remove(name(i)); err != nil {
			return err
		}
	}
	return sys.Sync()
}
