module lfs

go 1.22
