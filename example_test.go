package lfs_test

import (
	"errors"
	"fmt"

	"lfs"
)

// Example_crashRecovery shows the paper's §4.4 recovery story: data
// synced to the log after the last checkpoint survives a crash via
// roll-forward; data still in the cache is lost (the bounded
// vulnerability window).
func Example_crashRecovery() {
	d := lfs.NewMemDisk(32 << 20)
	cfg := lfs.DefaultConfig()
	cfg.MaxInodes = 1024
	if err := lfs.Format(d, cfg); err != nil {
		panic(err)
	}
	fs, err := lfs.Mount(d, cfg)
	if err != nil {
		panic(err)
	}

	fs.Create("/synced")
	fs.Write("/synced", 0, []byte("on disk"))
	fs.Sync() // reaches the log

	fs.Create("/cached") // never leaves the file cache
	fs.Crash()

	recovered, err := lfs.Mount(d, cfg) // reads checkpoints + rolls the log forward
	if err != nil {
		panic(err)
	}
	buf := make([]byte, 16)
	n, _ := recovered.Read("/synced", 0, buf)
	fmt.Println("synced file:", string(buf[:n]))
	_, err = recovered.Stat("/cached")
	fmt.Println("cached file lost:", errors.Is(err, lfs.ErrNotExist))
	// Output:
	// synced file: on disk
	// cached file lost: true
}

// ExampleFS_CleanUntil shows the paper's user-level cleaning trigger:
// after deleting data, explicit cleaning compacts fragmented segments
// back into clean log space.
func ExampleFS_CleanUntil() {
	d := lfs.NewMemDisk(16 << 20)
	cfg := lfs.DefaultConfig()
	cfg.MaxInodes = 4096
	if err := lfs.Format(d, cfg); err != nil {
		panic(err)
	}
	fs, err := lfs.Mount(d, cfg)
	if err != nil {
		panic(err)
	}
	// Fill a few segments, then delete everything.
	payload := make([]byte, 4096)
	for i := 0; i < 800; i++ {
		p := fmt.Sprintf("/f%d", i)
		fs.Create(p)
		fs.Write(p, 0, payload)
	}
	fs.Sync()
	for i := 0; i < 800; i++ {
		fs.Remove(fmt.Sprintf("/f%d", i))
	}
	fs.Sync()

	res, err := fs.CleanUntil(fs.CleanSegments() + 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("cleaned at least 3 segments:", res.SegmentsCleaned >= 3)
	fmt.Println("dead blocks copied:", res.LiveCopied > res.BlocksExamined/2)
	// Output:
	// cleaned at least 3 segments: true
	// dead blocks copied: false
}

// Example_tracing shows the observability subsystem: attach a
// TraceRecorder through Config.Trace and every VFS operation becomes a
// span while every disk request carries an IOCause, so disk busy time
// decomposes exactly into the paper's categories.
func Example_tracing() {
	rec := lfs.NewTraceRecorder()
	d := lfs.NewMemDisk(16 << 20)
	cfg := lfs.DefaultConfig()
	cfg.MaxInodes = 1024
	cfg.Trace = rec
	if err := lfs.Format(d, cfg); err != nil {
		panic(err)
	}
	fs, err := lfs.Mount(d, cfg)
	if err != nil {
		panic(err)
	}
	fs.Create("/f")
	fs.Write("/f", 0, make([]byte, 32<<10))
	fs.Sync()

	agg := rec.Aggregates()
	for _, op := range agg.Ops {
		fmt.Printf("%s x%d\n", op.Op, op.Count)
	}
	named, total := agg.AttributedBusy()
	fmt.Println("disk time fully attributed:", total > 0 && named == total)
	// A trace can also be exported line-by-line with rec.WriteJSONL and
	// summarised offline by cmd/lfstrace.

	// Output:
	// create x1
	// sync x1
	// write x1
	// disk time fully attributed: true
}

// ExampleFS_StatsSnapshot shows the race-safe statistics surface: one
// call copies the log, disk, cache, and CPU counters atomically, so
// derived ratios are consistent even while a workload runs.
func ExampleFS_StatsSnapshot() {
	d := lfs.NewMemDisk(16 << 20)
	cfg := lfs.DefaultConfig()
	cfg.MaxInodes = 1024
	if err := lfs.Format(d, cfg); err != nil {
		panic(err)
	}
	fs, err := lfs.Mount(d, cfg)
	if err != nil {
		panic(err)
	}
	fs.Create("/f")
	fs.Write("/f", 0, make([]byte, 64<<10))
	fs.Sync()
	snap := fs.StatsSnapshot()
	fmt.Println("log units written:", snap.Log.UnitsWritten > 0)
	fmt.Println("disk busy:", snap.Disk.BusyTime > 0)
	fmt.Println("write cost before cleaning:", snap.WriteCost() == 0)
	// Output:
	// log units written: true
	// disk busy: true
	// write cost before cleaning: true
}

// ExampleFS_Stats shows the log-level instrumentation.
func ExampleFS_Stats() {
	d := lfs.NewMemDisk(16 << 20)
	cfg := lfs.DefaultConfig()
	cfg.MaxInodes = 1024
	if err := lfs.Format(d, cfg); err != nil {
		panic(err)
	}
	fs, err := lfs.Mount(d, cfg)
	if err != nil {
		panic(err)
	}
	fs.Create("/f")
	fs.Write("/f", 0, make([]byte, 64<<10))
	fs.Sync()
	st := fs.Stats()
	fmt.Println("log units written:", st.UnitsWritten > 0)
	fmt.Println("write amplification sane:", st.WriteAmplification(cfg.BlockSize) >= 1)
	// Output:
	// log units written: true
	// write amplification sane: true
}
