package lfs_test

import (
	"errors"
	"fmt"

	"lfs"
)

// Example_crashRecovery shows the paper's §4.4 recovery story: data
// synced to the log after the last checkpoint survives a crash via
// roll-forward; data still in the cache is lost (the bounded
// vulnerability window).
func Example_crashRecovery() {
	d := lfs.NewMemDisk(32 << 20)
	cfg := lfs.DefaultConfig()
	cfg.MaxInodes = 1024
	if err := lfs.Format(d, cfg); err != nil {
		panic(err)
	}
	fs, err := lfs.Mount(d, cfg)
	if err != nil {
		panic(err)
	}

	fs.Create("/synced")
	fs.Write("/synced", 0, []byte("on disk"))
	fs.Sync() // reaches the log

	fs.Create("/cached") // never leaves the file cache
	fs.Crash()

	recovered, err := lfs.Mount(d, cfg) // reads checkpoints + rolls the log forward
	if err != nil {
		panic(err)
	}
	buf := make([]byte, 16)
	n, _ := recovered.Read("/synced", 0, buf)
	fmt.Println("synced file:", string(buf[:n]))
	_, err = recovered.Stat("/cached")
	fmt.Println("cached file lost:", errors.Is(err, lfs.ErrNotExist))
	// Output:
	// synced file: on disk
	// cached file lost: true
}

// ExampleFS_CleanUntil shows the paper's user-level cleaning trigger:
// after deleting data, explicit cleaning compacts fragmented segments
// back into clean log space.
func ExampleFS_CleanUntil() {
	d := lfs.NewMemDisk(16 << 20)
	cfg := lfs.DefaultConfig()
	cfg.MaxInodes = 4096
	if err := lfs.Format(d, cfg); err != nil {
		panic(err)
	}
	fs, err := lfs.Mount(d, cfg)
	if err != nil {
		panic(err)
	}
	// Fill a few segments, then delete everything.
	payload := make([]byte, 4096)
	for i := 0; i < 800; i++ {
		p := fmt.Sprintf("/f%d", i)
		fs.Create(p)
		fs.Write(p, 0, payload)
	}
	fs.Sync()
	for i := 0; i < 800; i++ {
		fs.Remove(fmt.Sprintf("/f%d", i))
	}
	fs.Sync()

	res, err := fs.CleanUntil(fs.CleanSegments() + 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("cleaned at least 3 segments:", res.SegmentsCleaned >= 3)
	fmt.Println("dead blocks copied:", res.LiveCopied > res.BlocksExamined/2)
	// Output:
	// cleaned at least 3 segments: true
	// dead blocks copied: false
}

// ExampleFS_Stats shows the log-level instrumentation.
func ExampleFS_Stats() {
	d := lfs.NewMemDisk(16 << 20)
	cfg := lfs.DefaultConfig()
	cfg.MaxInodes = 1024
	if err := lfs.Format(d, cfg); err != nil {
		panic(err)
	}
	fs, err := lfs.Mount(d, cfg)
	if err != nil {
		panic(err)
	}
	fs.Create("/f")
	fs.Write("/f", 0, make([]byte, 64<<10))
	fs.Sync()
	st := fs.Stats()
	fmt.Println("log units written:", st.UnitsWritten > 0)
	fmt.Println("write amplification sane:", st.WriteAmplification(cfg.BlockSize) >= 1)
	// Output:
	// log units written: true
	// write amplification sane: true
}
