// Package lfs is a Go implementation of the LFS storage manager from
// Rosenblum & Ousterhout, "The LFS Storage Manager" (USENIX 1990): a
// log-structured file system that treats the disk as a segmented
// append-only log, together with the substrate the paper's evaluation
// needs — a simulated disk with an explicit service-time model, a
// buffer cache, and a BSD-FFS-style update-in-place baseline.
//
// # Quick start
//
//	d := lfs.NewMemDisk(64 << 20)
//	cfg := lfs.DefaultConfig()
//	if err := lfs.Format(d, cfg); err != nil { ... }
//	fs, err := lfs.Mount(d, cfg)
//	if err != nil { ... }
//	fs.Create("/hello")
//	fs.Write("/hello", 0, []byte("world"))
//	fs.Unmount()
//
// All time in this package is simulated: file systems charge CPU
// instructions at a configurable MIPS rating and the disk charges
// seek/rotation/transfer time, so the performance characteristics the
// paper measures (synchronous random I/O vs asynchronous sequential
// logging) are reproducible and deterministic. Read wall-clock-free
// timings from fs.Clock().
//
// The package root re-exports the pieces a user needs; the full
// implementations live in internal/ (internal/core is the
// log-structured storage manager itself).
package lfs

import (
	"lfs/internal/core"
	"lfs/internal/disk"
	"lfs/internal/layout"
	"lfs/internal/obs"
	"lfs/internal/shard"
	"lfs/internal/sim"
	"lfs/internal/vfs"
)

// Core types re-exported from the implementation packages.
type (
	// FS is a mounted log-structured file system.
	FS = core.FS
	// Config carries LFS tunables (block size, segment size,
	// cleaning policy, checkpoint interval, ...).
	Config = core.Config
	// CleanPolicy selects the cleaner's victim policy.
	CleanPolicy = core.CleanPolicy
	// CleanResult summarises a cleaner activation.
	CleanResult = core.CleanResult
	// Stats counts internal LFS activity.
	//
	// Deprecated-style note: prefer FS.StatsSnapshot, which copies
	// every statistics surface atomically; reading Stats and DiskStats
	// through separate accessors lets a running workload skew derived
	// ratios.
	Stats = core.Stats
	// StatsSnapshot is an atomic copy of every statistics surface of
	// a mounted FS, from FS.StatsSnapshot.
	StatsSnapshot = core.StatsSnapshot
	// CheckReport is the result of a consistency check (Fsck or
	// FS.Check).
	CheckReport = core.CheckReport
	// Disk is the simulated block device file systems run on.
	Disk = disk.Disk
	// DiskGeometry describes a simulated disk's physical layout.
	DiskGeometry = disk.Geometry
	// DiskPerfModel is the disk service-time model.
	DiskPerfModel = disk.PerfModel
	// DiskStats counts disk activity.
	DiskStats = disk.Stats
	// FileSystem is the operation set shared by LFS and the FFS
	// baseline.
	FileSystem = vfs.FileSystem
	// PathError is the error type returned by all FileSystem
	// operations: the operation, the path, and an underlying error
	// wrapping one of the sentinels below (test with errors.Is, or
	// errors.As to recover the path).
	PathError = vfs.PathError
	// TraceRecorder collects operation spans, cause-tagged disk
	// events, and cleaner activation records. Attach one through
	// Config.Trace (or BaselineConfig.Trace) before Mount.
	TraceRecorder = obs.Recorder
	// Span is one traced VFS operation.
	Span = obs.Span
	// CleanRecord is one traced cleaner activation.
	CleanRecord = obs.CleanRecord
	// TraceAggregates condenses a trace: per-op latency, disk
	// busy-time decomposition by cause, cleaner cost summary.
	TraceAggregates = obs.Aggregates
	// IOCause attributes one disk request to the activity that
	// issued it.
	IOCause = disk.IOCause
	// FileInfo describes a file, as returned by Stat.
	FileInfo = vfs.FileInfo
	// DirEntry is one directory entry.
	DirEntry = layout.DirEntry
	// Ino is an inode number.
	Ino = layout.Ino
	// Clock is the simulated clock.
	Clock = sim.Clock
	// Time is a point in simulated time.
	Time = sim.Time
	// Store is the persistence layer beneath a Disk: a flat
	// fixed-size byte array with whole-image durability on Sync.
	Store = disk.Store
	// StoreOptions selects and configures a store backend for
	// OpenStore and NewDisk.
	StoreOptions = disk.StoreOptions
	// StoreBackend names a block-store backend.
	StoreBackend = disk.StoreBackend
	// Snapshotter is the optional store capability for O(1)
	// copy-on-write snapshots, detected by interface assertion.
	Snapshotter = disk.Snapshotter
	// Snapshot is a point-in-time image from a Snapshotter.
	Snapshot = disk.Snapshot
	// Allocator is the optional store capability reporting physical
	// bytes allocated (sparse backends allocate less than Size).
	Allocator = disk.Allocator
)

// Cleaning policies.
const (
	// CleanGreedy picks the least-utilised segments (the paper's
	// policy).
	CleanGreedy = core.CleanGreedy
	// CleanCostBenefit weights free space by data age.
	CleanCostBenefit = core.CleanCostBenefit
)

// I/O causes, the categories the disk busy-time decomposition reports
// (DiskStats.ByCause, indexed by IOCause).
const (
	// CauseOther is unattributed I/O.
	CauseOther = disk.CauseOther
	// CauseLogAppend is a segment write of new data.
	CauseLogAppend = disk.CauseLogAppend
	// CauseCleanerRead is the cleaner's whole-segment read.
	CauseCleanerRead = disk.CauseCleanerRead
	// CauseCleanerWrite is the cleaner rewriting live blocks.
	CauseCleanerWrite = disk.CauseCleanerWrite
	// CauseCheckpoint is a checkpoint-region write.
	CauseCheckpoint = disk.CauseCheckpoint
	// CauseInodeMap is inode and inode-map block I/O.
	CauseInodeMap = disk.CauseInodeMap
	// CauseReadMiss is a file cache miss.
	CauseReadMiss = disk.CauseReadMiss
	// CauseSyncWrite is the FFS baseline's synchronous metadata
	// write.
	CauseSyncWrite = disk.CauseSyncWrite
	// CauseWriteback is the baseline's delayed write-back.
	CauseWriteback = disk.CauseWriteback
	// CauseRecovery is mount-time recovery I/O.
	CauseRecovery = disk.CauseRecovery
	// CauseFormat is volume initialisation.
	CauseFormat = disk.CauseFormat
	// CauseTool is offline tool I/O (dump, fsck walks).
	CauseTool = disk.CauseTool
)

// Store backends, for StoreOptions.Backend.
const (
	// BackendMem is a plain in-memory byte array (the default).
	BackendMem = disk.BackendMem
	// BackendCow is an in-memory chunked store with O(1)
	// copy-on-write snapshots (implements Snapshotter).
	BackendCow = disk.BackendCow
	// BackendFile is a sparse file-backed image (implements
	// Allocator).
	BackendFile = disk.BackendFile
	// BackendMmap is a memory-mapped file image (unix only).
	BackendMmap = disk.BackendMmap
)

// NewTraceRecorder returns an empty trace recorder, ready to be
// attached through Config.Trace.
func NewTraceRecorder() *TraceRecorder { return obs.NewRecorder() }

// NewTraceRecorderLimit returns a trace recorder that retains only
// the newest n records of each type, dropping the oldest as new ones
// arrive (drop counts surface in Aggregates); n <= 0 means unlimited.
// Long-running instrumented workloads use it to bound trace memory.
func NewTraceRecorderLimit(n int) *TraceRecorder { return obs.NewRecorderLimit(n) }

// Sentinel errors, tested with errors.Is.
var (
	ErrNotExist  = vfs.ErrNotExist
	ErrExist     = vfs.ErrExist
	ErrIsDir     = vfs.ErrIsDir
	ErrNotDir    = vfs.ErrNotDir
	ErrNotEmpty  = vfs.ErrNotEmpty
	ErrNoSpace   = vfs.ErrNoSpace
	ErrTooLarge  = vfs.ErrTooLarge
	ErrInvalid   = vfs.ErrInvalid
	ErrUnmounted = vfs.ErrUnmounted
)

// Store sentinel errors, tested with errors.Is.
var (
	// ErrStoreClosed reports an operation on a closed store.
	ErrStoreClosed = disk.ErrClosed
	// ErrStoreOutOfRange reports store access outside the image.
	ErrStoreOutOfRange = disk.ErrOutOfRange
)

// DefaultConfig returns the paper's evaluation configuration: 4 KB
// blocks, 1 MB segments, ~15 MB cache, 30-second write-back and
// checkpoint intervals, greedy cleaning, roll-forward recovery on.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewMemDisk returns a memory-backed simulated disk of at least the
// given capacity, modelled on the paper's CDC WREN IV (1.3 MB/s
// transfer bandwidth, 17.5 ms average seek) and driven by a fresh
// simulated clock.
func NewMemDisk(capacity int64) *Disk {
	return disk.NewMem(capacity, sim.NewClock())
}

// NewMemDiskWithClock is NewMemDisk with a caller-provided clock, for
// sharing one timeline across several devices.
func NewMemDiskWithClock(capacity int64, clock *Clock) *Disk {
	return disk.NewMem(capacity, clock)
}

// OpenStore opens a raw block store without a simulated disk on top;
// most callers want NewDisk instead. The capacity is used exactly as
// given — NewDisk rounds it to disk geometry first.
func OpenStore(opts StoreOptions) (Store, error) { return disk.OpenStore(opts) }

// ParseStoreBackend maps a backend name ("mem", "cow", "file", "mmap")
// to its StoreBackend, for command-line flags.
func ParseStoreBackend(name string) (StoreBackend, bool) {
	return disk.ParseStoreBackend(name)
}

// NewDisk builds a simulated disk of at least opts.Capacity bytes on
// the selected store backend, modelled on the paper's CDC WREN IV and
// driven by a fresh simulated clock. The backend never affects the
// simulation: timing, statistics, and image bytes are identical across
// backends — only persistence technology differs.
func NewDisk(opts StoreOptions) (*Disk, error) {
	geom := disk.GeometryForCapacity(opts.Capacity)
	opts.Capacity = geom.TotalBytes()
	store, err := disk.OpenStore(opts)
	if err != nil {
		return nil, err
	}
	return disk.New(store, geom, disk.WrenIVModel(), sim.NewClock())
}

// OpenImage opens (or creates) a file-backed disk image, so volumes
// survive process restarts; used by the command-line tools. It is
// NewDisk with the file backend.
func OpenImage(path string, capacity int64) (*Disk, error) {
	return NewDisk(StoreOptions{Backend: BackendFile, Path: path, Capacity: capacity})
}

// Format initialises the disk as an empty log-structured file system.
func Format(d *Disk, cfg Config) error { return core.Format(d, cfg) }

// Mount attaches a formatted LFS volume, running crash recovery: the
// newest valid checkpoint is loaded and, unless disabled in the
// config, the log tail is rolled forward through the segment
// summaries.
func Mount(d *Disk, cfg Config) (*FS, error) { return core.Mount(d, cfg) }

// Fsck mounts the volume (running normal crash recovery, subject to
// cfg.RollForward) and walks it with the consistency checker. It is
// the shared verification path of the lfsck tool and the crash-point
// test harness.
func Fsck(d *Disk, cfg Config) (*CheckReport, error) { return core.Fsck(d, cfg) }

// ImageBytes returns the size in bytes of a disk image file for a
// volume of the given capacity — what OpenImage will create or expect.
// Tools use it to detect truncated images before mounting them: a
// short image is silently extended with zeros, which can turn obvious
// truncation into subtle "corruption".
func ImageBytes(capacity int64) int64 {
	return disk.GeometryForCapacity(capacity).TotalBytes()
}

// Walk visits every file and directory under root in depth-first,
// name-sorted order.
func Walk(fsys FileSystem, root string, fn func(path string, fi FileInfo) error) error {
	return vfs.Walk(fsys, root, fn)
}

// TreeSize returns the total bytes of regular files under root plus
// file and directory counts.
func TreeSize(fsys FileSystem, root string) (bytes int64, files, dirs int, err error) {
	return vfs.TreeSize(fsys, root)
}

// Sharded multi-log scale-out: a VFS-conforming router partitioning
// the namespace across N independent single-log file systems on one
// simulated clock (see DESIGN.md §12).
type (
	// ShardFS routes each path to the shard that owns it — hash
	// placement by default, directory-subtree pins as an option — and
	// implements FileSystem over the whole array.
	ShardFS = shard.FS
	// ShardOptions configures placement pins, the per-shard base
	// Config, and the per-shard observability hook.
	ShardOptions = shard.Options
)

// ErrCrossShard reports a rename or link whose two paths place on
// different shards; match it with errors.Is.
var ErrCrossShard = shard.ErrCrossShard

// NewClock returns a fresh simulated clock, for assembling
// multi-device arrays on one timeline.
func NewClock() *Clock { return sim.NewClock() }

// NewDiskWithClock is NewDisk with a caller-provided clock, so the
// disks of a sharded array share one timeline (FormatSharded and
// MountSharded require it).
func NewDiskWithClock(opts StoreOptions, clock *Clock) (*Disk, error) {
	geom := disk.GeometryForCapacity(opts.Capacity)
	opts.Capacity = geom.TotalBytes()
	store, err := disk.OpenStore(opts)
	if err != nil {
		return nil, err
	}
	return disk.New(store, geom, disk.WrenIVModel(), clock)
}

// FormatSharded formats every disk as an independent, standalone LFS
// volume; shard images carry no sharding metadata and any one of them
// mounts alone with Mount (see FORMAT.md).
func FormatSharded(disks []*Disk, opts ShardOptions) error { return shard.Format(disks, opts) }

// MountSharded attaches a formatted shard set behind one router,
// running per-shard crash recovery.
func MountSharded(disks []*Disk, opts ShardOptions) (*ShardFS, error) {
	return shard.Mount(disks, opts)
}

// NewMemSharded formats and mounts n shards over fresh memory-backed
// disks sharing one clock, splitting totalCapacity evenly.
func NewMemSharded(n int, totalCapacity int64, opts ShardOptions) (*ShardFS, error) {
	return shard.NewMem(n, totalCapacity, opts)
}
