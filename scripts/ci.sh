#!/bin/sh
# ci.sh — the merge gate: build, vet, and the full test suite under
# the race detector (which includes the crash-point sweeps and the
# fuzz seed corpora). scripts/check.sh is the longer local suite with
# benches and tool smoke tests.
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...
echo "== gofmt =="
# Formatting drift fails the gate before anything slower runs.
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt drift in:" >&2
	echo "$unformatted" >&2
	exit 1
fi
echo "== vet =="
go vet ./...
echo "== lint =="
# lfslint enforces the simulation/log invariants (simulated clock
# only, named IOCauses, *vfs.PathError returns, guarded-field
# locking, no mixed atomics) before the test suite spends minutes.
go run ./cmd/lfslint ./...
echo "== test -race =="
go test -race ./...
echo "== tracing smoke =="
# Instrumented small-file + cleaning run: exports the JSONL trace,
# summarises it with lfstrace, and writes the headline numbers
# (write cost, ops/s, attribution share) to BENCH_trace.json.
tracedir="$(mktemp -d)"
go run ./cmd/lfsbench -experiment trace -quick \
	-trace "$tracedir/trace.jsonl" -benchjson BENCH_trace.json
go run ./cmd/lfstrace "$tracedir/trace.jsonl" > /dev/null
rm -rf "$tracedir"
echo "== concurrency smoke =="
# Multi-client throughput curve (LFS group commit vs ablation vs FFS):
# the scaling claim of the concurrency subsystem, recorded alongside
# the tracing numbers.
go run ./cmd/lfsbench -experiment concurrency -quick \
	-benchjson BENCH_concurrency.json
echo "ci passed"
