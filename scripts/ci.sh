#!/bin/sh
# ci.sh — the merge gate: build, vet, and the full test suite under
# the race detector (which includes the crash-point sweeps and the
# fuzz seed corpora). scripts/check.sh is the longer local suite with
# benches and tool smoke tests.
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...
echo "== vet =="
go vet ./...
echo "== test -race =="
go test -race ./...
echo "ci passed"
