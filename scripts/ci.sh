#!/bin/sh
# ci.sh — the merge gate: build, vet, and the full test suite under
# the race detector (which includes the crash-point sweeps and the
# fuzz seed corpora). scripts/check.sh is the longer local suite with
# benches and tool smoke tests.
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...
echo "== gofmt =="
# Formatting drift fails the gate before anything slower runs.
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt drift in:" >&2
	echo "$unformatted" >&2
	exit 1
fi
echo "== vet =="
go vet ./...
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
echo "== lint =="
# lfslint enforces the simulation/log invariants (simulated clock
# only, named IOCauses, *vfs.PathError returns, guarded-field
# locking, no mixed atomics, no map-order output, single-threaded
# simulation, errors.Is sentinels, store capability/Close discipline,
# integral accounting) before the test suite spends minutes. The
# per-analyzer timings print with the run, the whole suite must fit
# the 20s budget, and the machine-readable report lands next to the
# other CI artifacts.
go run ./cmd/lfslint -timings -budget 20s -json "$tracedir/lint.json" ./...
echo "== test -race =="
go test -race ./...
echo "== tracing smoke =="
# Instrumented small-file + cleaning run: exports the JSONL trace,
# summarises it with lfstrace, and writes the headline numbers
# (write cost, ops/s, attribution share) to a fresh summary that is
# diffed against the committed BENCH_trace.json baseline (±10%)
# before replacing it — a silent perf regression fails here.
go run ./cmd/lfsbench -experiment trace -quick \
	-trace "$tracedir/trace.jsonl" -benchjson "$tracedir/BENCH_trace.json"
go run ./cmd/lfstrace "$tracedir/trace.jsonl" > /dev/null
go run ./cmd/lfstrace -critpath "$tracedir/trace.jsonl" > /dev/null
go run ./cmd/lfstrace -json "$tracedir/trace.jsonl" > /dev/null
scripts/benchdiff.sh BENCH_trace.json "$tracedir/BENCH_trace.json"
mv "$tracedir/BENCH_trace.json" BENCH_trace.json
echo "== concurrency smoke =="
# Multi-client throughput curve (LFS group commit vs ablation vs FFS)
# with the metrics plane sampling every instance; the time series is
# replayed through lfstop and the curve diffed against its baseline.
go run ./cmd/lfsbench -experiment concurrency -quick \
	-metrics "$tracedir/concurrency.metrics.jsonl" \
	-benchjson "$tracedir/BENCH_concurrency.json"
go run ./cmd/lfstop "$tracedir/concurrency.metrics.jsonl" > /dev/null
scripts/benchdiff.sh BENCH_concurrency.json "$tracedir/BENCH_concurrency.json"
mv "$tracedir/BENCH_concurrency.json" BENCH_concurrency.json
echo "== critical-path smoke =="
# Latency-attribution smoke: the group-commit fsync sweep with every
# span's phase decomposition checked for exactness — lfsbench fails
# the run itself if any span's phases do not sum to its latency — and
# the per-phase means, percentiles, and tail blame diffed against the
# committed baseline, so time silently moving between phases (an
# attribution regression) cannot land.
go run ./cmd/lfsbench -experiment critpath -quick \
	-benchjson "$tracedir/BENCH_critpath.json"
scripts/benchdiff.sh BENCH_critpath.json "$tracedir/BENCH_critpath.json"
mv "$tracedir/BENCH_critpath.json" BENCH_critpath.json
echo "== cleaning-curve smoke =="
# Write-cost-vs-utilization curve (greedy vs cost-benefit vs
# cost-benefit+segregation) under the seeded Zipf overwrite load at
# the quick scale; the u=0.80 headline numbers are diffed against the
# committed baseline so a cleaning-policy or write-cost regression
# cannot land silently.
go run ./cmd/lfsbench -experiment cleaning-curve -quick \
	-benchjson "$tracedir/BENCH_cleaning.json"
scripts/benchdiff.sh BENCH_cleaning.json "$tracedir/BENCH_cleaning.json"
mv "$tracedir/BENCH_cleaning.json" BENCH_cleaning.json
echo "== sharding smoke =="
# Multi-log scale-out smoke: the quick ops/s-vs-shard-count sweep
# plus the four-shard crash scenario (power cut on shard 0 mid-write,
# healthy shards keep committing, per-shard recovery, then fsck of
# all four images) and the same-seed byte-identical determinism
# rerun. lfsbench fails the run itself if any of those break; the
# curve and crash counters are additionally diffed against the
# committed baseline, and the per-shard metrics stream is replayed
# through lfstop's shard table.
go run ./cmd/lfsbench -experiment sharding -quick \
	-metrics "$tracedir/sharding.metrics.jsonl" \
	-benchjson "$tracedir/BENCH_sharding.json"
go run ./cmd/lfstop "$tracedir/sharding.metrics.jsonl" > /dev/null
scripts/benchdiff.sh BENCH_sharding.json "$tracedir/BENCH_sharding.json"
mv "$tracedir/BENCH_sharding.json" BENCH_sharding.json
echo "== store conformance =="
# The pluggable-store acceptance gate, run explicitly (it is also part
# of `go test ./...` above): every backend — mem, cow, file, mmap —
# must pass the exported conformance suite, including fault-injection
# identity and same-seed byte-identical images.
go test ./internal/disk -run 'TestStoreConformance|TestStoreDifferentialProperty' -count=1
echo "== crashsweep smoke =="
# Crash-point sweep benchmark: the snapshot strategy (restore a
# copy-on-write image per point) must stay at least 5x faster per
# point than replaying the workload — lfsbench itself enforces the
# floor — and the sweep's deterministic counters are diffed against
# the committed baseline.
go run ./cmd/lfsbench -experiment crashsweep -quick \
	-benchjson "$tracedir/BENCH_crashsweep.json"
scripts/benchdiff.sh BENCH_crashsweep.json "$tracedir/BENCH_crashsweep.json"
mv "$tracedir/BENCH_crashsweep.json" BENCH_crashsweep.json
echo "== metrics smoke =="
# Metrics-plane smoke: small-file + cleaning run under the sampler,
# final sample pinned to the end-of-run aggregates; the series feeds
# lfstop and the headline numbers are diffed against the baseline.
go run ./cmd/lfsbench -experiment metrics -quick \
	-metrics "$tracedir/metrics.jsonl" \
	-benchjson "$tracedir/BENCH_metrics.json"
go run ./cmd/lfstop "$tracedir/metrics.jsonl" > /dev/null
scripts/benchdiff.sh BENCH_metrics.json "$tracedir/BENCH_metrics.json"
mv "$tracedir/BENCH_metrics.json" BENCH_metrics.json
echo "ci passed"
