#!/bin/sh
# benchdiff.sh — compare a fresh benchjson summary against a committed
# baseline, key by key. The simulation is deterministic, so the
# numbers should be identical run to run; the tolerance only absorbs
# intentional model changes small enough not to matter. Anything
# larger fails the gate so a perf or timing regression cannot land
# silently.
#
# Usage: benchdiff.sh baseline.json fresh.json [tolerance]
#
# Both files must contain the same numeric keys in the same order
# (encoding/json emits map keys sorted and struct fields in order, so
# the sequence is stable). Each fresh value must lie within tolerance
# (relative, default 0.10) of its baseline; a zero baseline requires a
# zero fresh value. Exits non-zero with one line per violation.
set -eu

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
	echo "usage: benchdiff.sh baseline.json fresh.json [tolerance]" >&2
	exit 2
fi
base=$1
fresh=$2
tol=${3:-0.10}

if [ ! -f "$base" ]; then
	echo "benchdiff: baseline $base missing (commit one from a trusted run)" >&2
	exit 1
fi
if [ ! -f "$fresh" ]; then
	echo "benchdiff: fresh summary $fresh missing" >&2
	exit 1
fi

awk -v tol="$tol" -v base="$base" '
# Collect `"key": <number>` lines from each file in order. String
# values ("experiment": "trace") never match and are ignored.
{
	line = $0
	sub(/^[ \t]+/, "", line)
	sub(/[, \t]+$/, "", line)
	if (line !~ /^"[A-Za-z0-9_.]+": *-?[0-9]/)
		next
	key = line
	sub(/^"/, "", key)
	sub(/".*$/, "", key)
	val = line
	sub(/^"[^"]*": */, "", val)
	if (FILENAME == base) {
		bkey[++nb] = key
		bval[nb] = val + 0
	} else {
		fkey[++nf] = key
		fval[nf] = val + 0
	}
}
function fail(msg) {
	print "benchdiff: " msg > "/dev/stderr"
	bad = 1
}
END {
	if (nb == 0)
		fail("no numeric keys in baseline " base)
	if (nb != nf)
		fail(sprintf("key count differs: baseline has %d, fresh has %d", nb, nf))
	n = nb < nf ? nb : nf
	for (i = 1; i <= n; i++) {
		if (bkey[i] != fkey[i]) {
			fail(sprintf("key sequence diverges at #%d: baseline %s, fresh %s",
				i, bkey[i], fkey[i]))
			break
		}
		b = bval[i]
		f = fval[i]
		d = f - b
		if (d < 0) d = -d
		ab = b < 0 ? -b : b
		if (ab == 0) {
			if (d != 0)
				fail(sprintf("%s: baseline 0, fresh %g", bkey[i], f))
		} else if (d > tol * ab) {
			fail(sprintf("%s: baseline %g, fresh %g (%.1f%% off, tolerance %.0f%%)",
				bkey[i], b, f, 100 * d / ab, 100 * tol))
		}
	}
	if (bad)
		exit 1
	printf "benchdiff: %d keys within %.0f%% of %s\n", n, 100 * tol, base
}
' "$base" "$fresh"
