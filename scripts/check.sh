#!/bin/sh
# check.sh — full verification: build, vet, tests, benches (one
# iteration each), and a quick end-to-end tool exercise on a temp
# image. Mirrors what CI would run.
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...
echo "== vet =="
go vet ./...
echo "== tests =="
go test ./...
echo "== race (core packages) =="
go test -race ./internal/core/ ./internal/ffs/ ./internal/cache/
echo "== benchmarks (1 iteration) =="
go test -bench=. -benchtime=1x -benchmem .
echo "== tools =="
img="$(mktemp -d)/vol.img"
go run ./cmd/mklfs -image "$img" -size 32M
go run ./cmd/lfsck -image "$img" -size 32M
go run ./cmd/lfsdump -image "$img" -size 32M > /dev/null
echo "== quick experiments =="
go run ./cmd/lfsbench -experiment fig1 > /dev/null
echo "all checks passed"
