#!/bin/sh
# check.sh — full verification: build, vet, tests, benches (one
# iteration each), and a quick end-to-end tool exercise on a temp
# image. Mirrors what CI would run.
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...
echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt drift in:" >&2
	echo "$unformatted" >&2
	exit 1
fi
echo "== vet =="
go vet ./...
echo "== lint =="
go run ./cmd/lfslint -timings -budget 20s ./...
echo "== lint test suite =="
go test -v ./internal/lint/
echo "== tests =="
go test ./...
echo "== race (full suite) =="
go test -race ./...
echo "== benchmarks (1 iteration) =="
go test -bench=. -benchtime=1x -benchmem .
echo "== tools =="
img="$(mktemp -d)/vol.img"
go run ./cmd/mklfs -image "$img" -size 32M
go run ./cmd/lfsck -image "$img" -size 32M
go run ./cmd/lfsdump -image "$img" -size 32M > /dev/null
echo "== quick experiments =="
go run ./cmd/lfsbench -experiment fig1 > /dev/null
mjsonl="$(mktemp -d)/metrics.jsonl"
go run ./cmd/lfsbench -experiment metrics -quick -metrics "$mjsonl" > /dev/null
go run ./cmd/lfstop "$mjsonl" > /dev/null
echo "all checks passed"
